"""Shared fixtures, builders and hypothesis strategies for the test-suite.

The ad-hoc random-CSR/COO generators and bitwise assertion helpers that
used to be copy-pasted across ``test_*.py`` live here once, seeded and
shape-parameterised:

* :func:`random_csr` — scipy-backed random rectangular CSR;
* :func:`square_csr` / :func:`coo_matrices` / :func:`permutations` /
  :func:`random_partition` — hypothesis strategies for property tests;
* :func:`scrambled_blocks_matrix` — the "hidden block structure"
  operand the engine/pipeline suites use as a gainful planning target;
* :func:`assert_bitwise_equal` — the bitwise (not allclose) oracle
  comparison backing the engine's correctness contract;
* ``fig1`` — the paper's 6×6 worked example.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import strategies as st

from repro.core import COOMatrix, CSRMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


# ----------------------------------------------------------------------
# Deterministic builders
# ----------------------------------------------------------------------
def random_csr(n: int, m: int, density: float, seed: int) -> CSRMatrix:
    """Random CSR via scipy (the test oracle's own generator)."""
    mat = sp.random(n, m, density=density, random_state=seed, format="csr")
    mat.data[:] = np.random.default_rng(seed).uniform(0.5, 1.5, size=mat.nnz)
    return CSRMatrix.from_scipy(mat)


def scrambled_blocks_matrix(
    nblocks: int = 24,
    bsize: int = 16,
    *,
    density: float = 0.5,
    coupling: float = 0.0,
    seed: int = 1,
    scramble_seed: int = 7,
) -> CSRMatrix:
    """A block-diagonal matrix under a hidden symmetric permutation.

    The canonical "reordering + clustering should win here" operand:
    scrambling destroys the natural block locality that a good plan
    recovers (paper Figs. 2–3's scrambled regime).
    """
    from repro.matrices import generators as G
    from repro.matrices.perturb import scramble

    A = G.block_diagonal(nblocks, bsize, density=density, coupling=coupling, seed=seed)
    return scramble(A, seed=scramble_seed)


def paper_fig1_matrix() -> CSRMatrix:
    """The 6×6 worked example of paper Figs. 1/4/5/6.

    Rows: {0,1,2}, {1,2,5}, {0,1,5}, {3,4,5}, {2,4,5}, {0,3} — its CSR
    arrays are printed in paper Fig. 4.
    """
    rows = [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5]
    cols = [0, 1, 2, 1, 2, 5, 0, 1, 5, 3, 4, 5, 2, 4, 5, 0, 3]
    vals = np.arange(1.0, len(rows) + 1.0)
    return CSRMatrix.from_coo(COOMatrix(np.array(rows), np.array(cols), vals, (6, 6)))


@pytest.fixture
def fig1():
    return paper_fig1_matrix()


@pytest.fixture(scope="session")
def gainful_matrix():
    """A scrambled block matrix where clustering beats the baseline."""
    return scrambled_blocks_matrix(24, 16)


# ----------------------------------------------------------------------
# Assertions
# ----------------------------------------------------------------------
def assert_bitwise_equal(C, ref):
    """The engine/pipeline bitwise contract: identical pattern *and*
    bit-identical values (``array_equal``, never ``allclose``)."""
    assert C.shape == ref.shape
    assert np.array_equal(C.indptr, ref.indptr)
    assert np.array_equal(C.indices, ref.indices)
    assert np.array_equal(C.values, ref.values)  # bitwise, not allclose


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def square_csr(draw, max_n=14, max_nnz=50, value_range=4.0, unit_values=False):
    """Random square CSR: duplicate-summed COO of up to ``max_nnz``
    entries.  ``unit_values=True`` draws structure only (all-ones
    values), for properties where numerics are irrelevant."""
    n = draw(st.integers(2, max_n))
    k = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    if unit_values:
        vals = np.ones(k)
    else:
        vals = np.array(
            draw(st.lists(st.floats(-value_range, value_range, allow_nan=False), min_size=k, max_size=k))
        )
    return CSRMatrix.from_coo(
        COOMatrix(np.array(rows, np.int64), np.array(cols, np.int64), vals, (n, n))
    )


@st.composite
def coo_matrices(draw, max_n=12, max_nnz=40):
    """Random rectangular COO (possibly with duplicate coordinates)."""
    n = draw(st.integers(1, max_n))
    m = draw(st.integers(1, max_n))
    k = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    cols = draw(st.lists(st.integers(0, m - 1), min_size=k, max_size=k))
    vals = draw(st.lists(st.floats(-10, 10, allow_nan=False), min_size=k, max_size=k))
    return COOMatrix(np.array(rows, np.int64), np.array(cols, np.int64), np.array(vals), (n, m))


@st.composite
def permutations(draw, n):
    seed = draw(st.integers(0, 2**31 - 1))
    return np.random.default_rng(seed).permutation(n)


@st.composite
def random_partition(draw, n):
    """A random ordered partition of range(n) into clusters."""
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    ncuts = draw(st.integers(0, max(0, n - 1)))
    cuts = np.sort(rng.choice(np.arange(1, n), size=min(ncuts, n - 1), replace=False)) if n > 1 else []
    return [np.array(c) for c in np.split(order, cuts)]
