"""The unified component registry: capability queries, the clustering
registry, planner-space derivation (no drift), late registration, and the
removal of the legacy (pre-registry) entry points."""

import pytest

from repro.clustering import available_clusterings, get_clustering
from repro.engine.planner import default_candidates, planner_reorderings
from repro.pipeline import (
    KINDS,
    available_components,
    components,
    find_component,
    get_component,
)
from repro.reordering import available_reorderings, get_reordering_meta


def test_every_reordering_and_clustering_is_mirrored():
    assert available_components("reordering") == available_reorderings()
    assert available_components("clustering") == available_clusterings()
    assert set(available_components("kernel")) == {"rowwise", "cluster", "tiled", "hybrid"}


def test_available_clusterings_symmetric_to_reorderings():
    assert available_clusterings() == ["fixed", "variable", "hierarchical"]
    # The uniform registered signature: (A, **params) -> Clustering.
    from repro.matrices import generators as G

    cl = get_clustering("fixed")(G.grid2d(4, 4, seed=0), cluster_size=4)
    assert cl.method == "fixed"
    assert cl.nclusters == 4


def test_capability_tags():
    assert get_component("reordering", "original").square_only is False
    assert get_component("reordering", "rcm").square_only is True
    assert get_component("reordering", "rcm").family == "bandwidth"
    assert get_component("reordering", "rabbit").family == "hub"
    assert get_component("clustering", "hierarchical").embeds_reordering is True
    assert get_component("clustering", "fixed").embeds_reordering is False
    assert get_component("kernel", "cluster").requires_clustering is True
    assert get_component("kernel", "rowwise").requires_clustering is False
    assert get_component("reordering", "rcm").pre_cost_kind == "graph"
    assert get_component("clustering", "variable").pre_cost_kind == "kernel"


def test_find_component_resolves_kind_and_lists_on_miss():
    assert find_component("rcm").kind == "reordering"
    assert find_component("variable").kind == "clustering"
    assert find_component("tiled").kind == "kernel"
    with pytest.raises(KeyError) as e:
        find_component("nonsense")
    for kind in KINDS:
        assert kind in str(e.value)


def test_param_schema_carries_aliases_and_config_mapping():
    info = get_component("clustering", "hierarchical")
    names = [p.name for p in info.params]
    assert names == ["jacc_th", "max_cluster_th", "column_cap"]
    assert "max_th" in info.param_spec("max_cluster_th").aliases
    assert info.param_spec("jacc_th").config_attr == "jacc_th"
    # Config resolution through the mapping (satellite: no elif-chain).
    from repro.experiments import ExperimentConfig

    cfg = ExperimentConfig(max_cluster_th=4)
    assert info.resolve_params((), cfg)["max_cluster_th"] == 4


# ----------------------------------------------------------------------
# Planner-space derivation: no drift between registry and planner
# ----------------------------------------------------------------------
def test_planner_reorderings_derived_from_registry_ranks():
    ranked = [
        (c.planner_rank, c.name) for c in components("reordering") if c.planner_rank is not None
    ]
    assert planner_reorderings() == tuple(n for _, n in sorted(ranked))
    assert planner_reorderings() == ("rcm", "amd", "rabbit", "degree", "slashburn")


def test_default_candidates_cover_every_planned_component():
    cands = default_candidates(square=True)
    reorderings = {c.reordering for c in cands}
    clusterings = {c.clustering for c in cands if c.clustering}
    assert reorderings == {"original", *planner_reorderings()}
    assert clusterings == set(available_clusterings())
    # Order-embedding clusterings pair only with the natural order.
    for c in cands:
        if c.clustering and get_component("clustering", c.clustering).embeds_reordering:
            assert c.reordering == "original"
    # Non-square spaces drop square-only reorderings entirely.
    assert {c.reordering for c in default_candidates(square=False)} == {"original"}


def test_late_registration_is_visible_everywhere():
    from repro.clustering.base import _REGISTRY as CLUSTER_REGISTRY
    from repro.reordering.base import _META, _REGISTRY, ReorderingMeta

    import numpy as np

    from repro.reordering.base import ReorderingResult

    def reversed_order(A, *, seed=0):
        return ReorderingResult(np.arange(A.nrows, dtype=np.int64)[::-1].copy(), "test_reversed")

    _REGISTRY["test_reversed"] = reversed_order
    _META["test_reversed"] = ReorderingMeta(family="other", square_only=False, planner_rank=99)
    try:
        # Visible in the unified registry without any pipeline edit…
        assert "test_reversed" in available_components("reordering")
        # …planned automatically (the drift the satellite kills)…
        assert planner_reorderings()[-1] == "test_reversed"
        assert any(c.reordering == "test_reversed" for c in default_candidates(square=True))
        # …and spec-addressable, bitwise-correct through run().
        from repro.core import spgemm_rowwise
        from repro.matrices import generators as G
        from repro.pipeline import PipelineSpec

        A = G.grid2d(5, 5, seed=0)
        C = PipelineSpec.parse("test_reversed+fixed:4+cluster").run(A)
        ref = spgemm_rowwise(A, A)
        assert np.array_equal(C.values, ref.values)
        assert np.array_equal(C.indices, ref.indices)
    finally:
        _REGISTRY.pop("test_reversed")
        _META.pop("test_reversed")
        # The mirror keeps its entry (source registries are append-only
        # in normal use); drop it so other tests see a clean space.
        from repro.pipeline import registry as preg

        preg._REGISTRY.pop(("reordering", "test_reversed"), None)
        from repro.pipeline import builtin as pbuiltin

        pbuiltin._seen_reorderings.discard("test_reversed")
    assert "test_reversed" not in available_components("reordering")
    assert CLUSTER_REGISTRY  # unrelated registry untouched


# ----------------------------------------------------------------------
# Deprecation shims: removed (PR 2's window elapsed).  The legacy names
# must now fail loudly, and RA006 guards against hardcoded replacements.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "module_name, attr",
    [
        ("repro.engine.planner", "PLANNER_REORDERINGS"),
        ("repro.engine.planner", "_BANDWIDTH_ALGOS"),
        ("repro.engine.planner", "_HUB_ALGOS"),
        ("repro.engine.plan", "CLUSTERINGS"),
        ("repro.engine.plan", "KERNELS"),
    ],
)
def test_legacy_constants_are_gone(module_name, attr):
    import importlib

    mod = importlib.import_module(module_name)
    with pytest.raises(AttributeError):
        getattr(mod, attr)


def test_engine_modules_pass_registry_bypass_rule():
    # RA006: no module-level tuples of registered component names may
    # reappear in engine code (what the removed shims used to paper over).
    import pathlib

    from repro.analysis.checks.framework import analyze_file
    from repro.analysis.checks.rules import default_rules

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    rules = default_rules(repo_root, only=["RA006"])
    engine_dir = repo_root / "src" / "repro" / "engine"
    findings = [
        f
        for path in sorted(engine_dir.glob("*.py"))
        for f in analyze_file(path, rules, repo_root)
        if not f.suppressed
    ]
    assert findings == []


def test_planner_module_has_no_hardcoded_algorithm_tuples():
    # The acceptance criterion, checked literally: no registered
    # algorithm name appears as a string literal in engine/planner.py.
    import pathlib

    import repro.engine.planner as planner_mod

    source = pathlib.Path(planner_mod.__file__).read_text()
    algorithm_names = set(available_reorderings()) | set(available_clusterings())
    algorithm_names.discard("original")  # the identity is a structural constant
    for name in algorithm_names:
        assert f'"{name}"' not in source and f"'{name}'" not in source, name


def test_component_names_unique_across_kinds():
    from repro.pipeline import ComponentInfo, register_component

    with pytest.raises(ValueError, match="unique across kinds"):
        register_component(
            ComponentInfo(name="rowwise", kind="clustering", factory=lambda A: None)
        )
    # And still within a kind.
    with pytest.raises(ValueError, match="duplicate"):
        register_component(
            ComponentInfo(name="rowwise", kind="kernel", factory=lambda op, B: None)
        )


def test_predictor_training_corpus_is_predictor_data():
    # The built-in corpus sweeps the predictor module's documented
    # training set (not a planner-space slice), preserving pre-pipeline
    # predictor behaviour.
    from repro.analysis.predictor import DEFAULT_TRAINING_REORDERINGS

    assert DEFAULT_TRAINING_REORDERINGS == ("rcm", "degree", "rabbit")
    assert set(DEFAULT_TRAINING_REORDERINGS) <= set(available_reorderings())


def test_reordering_meta_accessible():
    meta = get_reordering_meta("rcm")
    assert meta.family == "bandwidth"
    assert meta.planner_rank == 1
    with pytest.raises(KeyError, match="available"):
        get_reordering_meta("nope")
