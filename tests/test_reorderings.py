"""Reordering algorithm tests: validity, objectives, registry (Table 1)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import CSRMatrix
from repro.reordering import (
    TABLE1_ORDER,
    apply_permutation,
    available_reorderings,
    bandwidth,
    get_reordering,
    reorder,
)
from repro.reordering.graph import Adjacency, bfs_levels, connected_components, pseudo_peripheral_node

from conftest import random_csr

ALL_ALGOS = ["original", "shuffled", "degree", "gray", "rcm", "amd", "nd", "gp", "hp", "rabbit", "slashburn"]


def banded_shuffled(n=200, seed=3):
    diags = sp.diags([np.ones(n - o) for o in (0, 1, 2)], [0, 1, 2], format="csr")
    A = CSRMatrix.from_scipy((diags + diags.T).tocsr())
    rng = np.random.default_rng(seed)
    return A, A.permute_symmetric(rng.permutation(n))


class TestRegistry:
    def test_all_table1_algorithms_registered(self):
        avail = set(available_reorderings())
        for name in ALL_ALGOS:
            assert name in avail
        for name in TABLE1_ORDER:
            assert name in avail

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown reordering"):
            get_reordering("magic")


@pytest.mark.parametrize("algo", ALL_ALGOS)
def test_produces_valid_permutation(algo):
    A = random_csr(60, 60, 0.08, seed=17)
    res = reorder(A, algo, seed=1)
    assert sorted(res.perm.tolist()) == list(range(60))
    assert res.algorithm == algo
    assert res.work >= 0


@pytest.mark.parametrize("algo", ALL_ALGOS)
def test_deterministic_given_seed(algo):
    A = random_csr(40, 40, 0.1, seed=23)
    r1 = reorder(A, algo, seed=5)
    r2 = reorder(A, algo, seed=5)
    assert np.array_equal(r1.perm, r2.perm)


def test_original_is_identity():
    A = random_csr(10, 10, 0.3, seed=2)
    assert reorder(A, "original").perm.tolist() == list(range(10))


def test_shuffle_changes_order():
    A = random_csr(50, 50, 0.1, seed=2)
    assert not np.array_equal(reorder(A, "shuffled", seed=1).perm, np.arange(50))


def test_degree_sorts_descending():
    A = random_csr(30, 30, 0.2, seed=3)
    res = reorder(A, "degree")
    lens = np.diff(A.indptr)
    assert np.all(np.diff(lens[res.perm]) <= 0)


def test_rcm_recovers_band_structure():
    A, Ash = banded_shuffled()
    res = reorder(Ash, "rcm")
    recovered = apply_permutation(Ash, res.perm)
    assert bandwidth(recovered) <= 4  # original band is 2
    assert bandwidth(recovered) < bandwidth(Ash) // 10


def test_amd_reduces_fill_proxy():
    """AMD should order a star graph's hub last (classic min-degree)."""
    n = 20
    dense = np.zeros((n, n))
    dense[0, :] = dense[:, 0] = 1.0  # vertex 0 is the hub
    np.fill_diagonal(dense, 1.0)
    A = CSRMatrix.from_dense(dense)
    res = reorder(A, "amd")
    # Leaves (degree 1) are eliminated first; the hub survives until its
    # degree finally drops to a tie with the last leaf.
    assert 0 in res.perm[-2:].tolist()


def test_nd_separator_last_structure():
    A, Ash = banded_shuffled(n=128)
    res = reorder(Ash, "nd", leaf_size=16)
    assert sorted(res.perm.tolist()) == list(range(128))


def test_gp_groups_partitions_contiguously():
    # Two disconnected cliques must land in different, contiguous parts.
    blocks = sp.block_diag([np.ones((10, 10)), np.ones((10, 10))], format="csr")
    A = CSRMatrix.from_scipy(blocks.tocsr())
    rng = np.random.default_rng(0)
    perm_hidden = rng.permutation(20)
    Ash = A.permute_symmetric(perm_hidden)
    res = reorder(Ash, "gp", k=2)
    out = apply_permutation(Ash, res.perm)
    # After ordering, the first 10 rows and last 10 rows are the cliques:
    # no nonzeros in the off-diagonal 10×10 corners.
    dense = out.to_dense()
    assert dense[:10, 10:].sum() == 0.0
    assert dense[10:, :10].sum() == 0.0


def test_hp_clique_vs_cutnet_methods():
    A = random_csr(60, 60, 0.08, seed=29)
    r1 = reorder(A, "hp", method="clique")
    r2 = reorder(A, "hp", method="cutnet")
    assert sorted(r1.perm.tolist()) == list(range(60))
    assert sorted(r2.perm.tolist()) == list(range(60))
    with pytest.raises(ValueError, match="HP method"):
        reorder(A, "hp", method="quantum")


def test_rabbit_groups_communities():
    blocks = sp.block_diag([np.ones((8, 8))] * 4, format="csr")
    A = CSRMatrix.from_scipy(blocks.tocsr())
    rng = np.random.default_rng(1)
    hidden = rng.permutation(32)
    Ash = A.permute_symmetric(hidden)
    res = reorder(Ash, "rabbit")
    out = apply_permutation(Ash, res.perm)
    # Communities contiguous → block-diagonal structure restored.
    dense = out.to_dense()
    for lo in range(0, 32, 8):
        assert dense[lo : lo + 8, lo : lo + 8].sum() > 0


def test_slashburn_places_hubs_first():
    n = 40
    dense = np.zeros((n, n))
    dense[0, :] = dense[:, 0] = 1.0  # hub 0
    dense[1, 2:20] = dense[2:20, 1] = 1.0  # hub 1
    np.fill_diagonal(dense, 1.0)
    A = CSRMatrix.from_dense(dense)
    res = reorder(A, "slashburn", k_ratio=0.05)
    assert 0 in res.perm[:4].tolist()


def test_gray_splits_dense_rows_first():
    dense = np.zeros((10, 32))
    dense[3, :] = 1.0  # one very dense row
    for i in range(10):
        dense[i, i % 32] = 1.0
    A = CSRMatrix.from_dense(dense)
    res = reorder(A, "gray")
    assert res.perm[0] == 3


def test_apply_permutation_modes(fig1):
    perm = np.array([1, 0, 2, 3, 4, 5])
    sym = apply_permutation(fig1, perm, mode="symmetric")
    rows = apply_permutation(fig1, perm, mode="rows")
    assert np.array_equal(sym.to_dense(), fig1.to_dense()[np.ix_(perm, perm)])
    assert np.array_equal(rows.to_dense(), fig1.to_dense()[perm])
    with pytest.raises(ValueError, match="unknown mode"):
        apply_permutation(fig1, perm, mode="cols")


class TestGraphUtils:
    def test_adjacency_symmetric_no_selfloops(self, fig1):
        adj = Adjacency.from_matrix(fig1)
        dense = np.zeros((6, 6))
        row_of = np.repeat(np.arange(6), np.diff(adj.indptr))
        dense[row_of, adj.indices] = 1
        assert np.array_equal(dense, dense.T)
        assert np.all(np.diag(dense) == 0)

    def test_bfs_levels_path_graph(self):
        path = sp.diags([np.ones(9), np.ones(9)], [1, -1], format="csr")
        adj = Adjacency.from_matrix(CSRMatrix.from_scipy(path.tocsr()))
        lv = bfs_levels(adj, 0)
        assert lv.tolist() == list(range(10))

    def test_pseudo_peripheral_reaches_end(self):
        path = sp.diags([np.ones(19), np.ones(19)], [1, -1], format="csr")
        adj = Adjacency.from_matrix(CSRMatrix.from_scipy(path.tocsr()))
        p = pseudo_peripheral_node(adj, 10)
        assert p in (0, 19)

    def test_connected_components(self):
        blocks = sp.block_diag([np.ones((3, 3)), np.ones((4, 4))], format="csr")
        adj = Adjacency.from_matrix(CSRMatrix.from_scipy(blocks.tocsr()))
        comp = connected_components(adj)
        assert len(set(comp[:3])) == 1
        assert len(set(comp[3:])) == 1
        assert comp[0] != comp[5]
