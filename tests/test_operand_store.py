"""Shared-memory operand store tests (``repro.backends.operand_store``).

The load-bearing properties: published arrays round-trip bitwise
through a descriptor + attach, residency is keyed by token (second
publish ships nothing), pinned segments survive eviction pressure, and
**no** ``/dev/shm`` segment outlives the store — whether it is closed
explicitly, finalized by the GC, or its consumer worker is SIGKILLed.
"""

from __future__ import annotations

import gc
import pickle

import numpy as np
import pytest

import repro.backends.operand_store as ostore
from repro.backends.operand_store import (
    OperandStore,
    SegmentDescriptor,
    attach_views,
    detach_segment,
    leaked_segments,
    read_result,
    write_result,
)


def sample_arrays(seed: int = 0, n: int = 64) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "indptr": np.arange(n + 1, dtype=np.int64),
        "indices": rng.integers(0, n, size=n, dtype=np.int32),
        "values": rng.standard_normal(n),
    }


@pytest.fixture
def store():
    s = OperandStore()
    yield s
    s.close()
    assert leaked_segments() == []


class TestPublishRoundTrip:
    def test_attach_views_bitwise(self, store):
        arrays = sample_arrays()
        desc = store.publish("tok:a", arrays, meta=(("kind", "csr"),))
        views = attach_views(desc)
        try:
            assert set(views) == set(arrays)
            for field, arr in arrays.items():
                assert views[field].dtype == arr.dtype
                assert np.array_equal(views[field], arr)
                assert not views[field].flags.writeable
            assert desc.meta_dict() == {"kind": "csr"}
        finally:
            detach_segment(desc.name)

    def test_descriptor_pickles(self, store):
        desc = store.publish("tok:p", sample_arrays(1))
        clone = pickle.loads(pickle.dumps(desc))
        assert clone == desc
        views = attach_views(clone)  # attach via the pickled copy
        try:
            assert np.array_equal(views["values"], sample_arrays(1)["values"])
        finally:
            detach_segment(clone.name)

    def test_residency_same_token_same_segment(self, store):
        d1 = store.publish("tok:b", sample_arrays(2))
        d2 = store.publish("tok:b", sample_arrays(2))
        assert d2 is d1 or d2.name == d1.name  # nothing new shipped
        assert store.get("tok:b").name == d1.name
        assert store.get("missing") is None
        assert store.resident_tokens() == ("tok:b",)


class TestPinningAndEviction:
    def test_pin_blocks_evict(self, store):
        desc = store.publish("tok:c", sample_arrays(3))
        store.pin("tok:c")
        assert not store.evict("tok:c")
        assert store.get("tok:c") is not None
        store.unpin("tok:c")
        assert store.evict("tok:c")
        assert store.get("tok:c") is None
        assert desc.name not in leaked_segments()

    def test_budget_sweep_is_lru_and_skips_pinned(self):
        arrays = sample_arrays()
        one = sum(a.nbytes for a in arrays.values()) + 64
        store = OperandStore(budget_bytes=2 * one)
        try:
            store.publish("tok:1", arrays)
            store.publish("tok:2", arrays)
            store.pin("tok:1")
            store.get("tok:2")  # touch: tok:2 is now most recent
            store.publish("tok:3", arrays)  # over budget → sweep
            tokens = store.resident_tokens()
            assert "tok:1" in tokens  # pinned: never swept
            assert "tok:3" in tokens  # just published
            assert "tok:2" not in tokens  # oldest unpinned victim
        finally:
            store.close()
        assert leaked_segments() == []

    def test_drain_evictions_per_consumer(self, store):
        store.register_consumer(0)
        store.register_consumer(1)
        store.publish("tok:d", sample_arrays(4))
        store.evict("tok:d")
        assert store.drain_evictions(0) == ("tok:d",)
        assert store.drain_evictions(0) == ()  # drained once
        assert store.drain_evictions(1) == ("tok:d",)  # independent
        assert store.drain_evictions(99) == ()  # unknown consumer


class TestResultArena:
    def test_write_read_round_trip(self, store):
        arena = store.create_arena(1 << 16)
        try:
            arrays = list(sample_arrays(5).values())
            metas = write_result(arena.shm, arrays)
            assert metas is not None
            got = read_result(arena, metas)
            for src, dst in zip(arrays, got):
                assert np.array_equal(src, dst)
        finally:
            store.release_arena(arena)
        assert arena.name not in leaked_segments()

    def test_write_reports_overflow(self, store):
        arena = store.create_arena(4096)
        try:
            big = np.zeros(1 << 16, dtype=np.float64)
            assert write_result(arena.shm, [big]) is None  # caller grows
        finally:
            store.release_arena(arena)


class TestLifecycle:
    def test_close_is_idempotent_and_unlinks_everything(self):
        store = OperandStore()
        store.publish("tok:e", sample_arrays(6))
        store.create_arena(4096)
        store.close()
        assert leaked_segments() == []
        store.close()  # second close is a no-op
        assert store.resident_tokens() == ()

    def test_finalizer_unlinks_without_close(self):
        store = OperandStore()
        store.publish("tok:f", sample_arrays(7))
        del store
        gc.collect()
        assert leaked_segments() == []

    def test_segment_names_carry_grep_prefix(self):
        store = OperandStore()
        try:
            desc = store.publish("tok:g", sample_arrays(8))
            assert desc.name.startswith(ostore.SEGMENT_PREFIX)
            assert desc.name in leaked_segments()  # visible while live
        finally:
            store.close()
