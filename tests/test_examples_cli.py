"""Smoke tests: every example script and the experiments CLI must run."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run(args, timeout=240):
    return subprocess.run(
        [sys.executable, *args], capture_output=True, text=True, timeout=timeout, cwd=EXAMPLES.parent
    )


def test_quickstart_example():
    r = run([EXAMPLES / "quickstart.py"])
    assert r.returncode == 0, r.stderr
    assert "row-wise (hash SPA) == cluster-wise: True" in r.stdout
    assert "speedup:" in r.stdout


def test_reordering_explorer_example():
    r = run([EXAMPLES / "reordering_explorer.py", "pdb1"])
    assert r.returncode == 0, r.stderr
    assert "hierarch." in r.stdout

    bad = run([EXAMPLES / "reordering_explorer.py", "nope"])
    assert bad.returncode != 0


def test_amg_example():
    r = run([EXAMPLES / "amg_galerkin_product.py"])
    assert r.returncode == 0, r.stderr
    assert "hierarchy complete" in r.stdout


@pytest.mark.slow
def test_bc_example():
    r = run([EXAMPLES / "betweenness_centrality.py"], timeout=400)
    assert r.returncode == 0, r.stderr
    assert "top-5 central vertices" in r.stdout


def test_cli_fig8(tmp_path, monkeypatch):
    env_args = ["-m", "repro.experiments.cli", "fig8"]
    r = subprocess.run(
        [sys.executable, *env_args], capture_output=True, text=True, timeout=600, cwd=EXAMPLES.parent
    )
    assert r.returncode == 0, r.stderr
    assert "Figure 8" in r.stdout


def test_cli_rejects_unknown():
    r = subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", "fig99"],
        capture_output=True,
        text=True,
        cwd=EXAMPLES.parent,
    )
    assert r.returncode != 0
