"""Metrics, profiles and table renderer tests."""

import numpy as np
import pytest

from repro.analysis import (
    Profile,
    amortization_profile,
    best_of,
    geomean,
    positive_fraction,
    positive_geomean,
    ratio_profile,
    render_box_figure,
    render_dataset_bars,
    render_matrix_table,
    render_profile,
    render_table2,
    summarize_speedups,
)


class TestMetrics:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nan(self):
        assert geomean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)

    def test_geomean_empty_is_nan(self):
        assert np.isnan(geomean([]))

    def test_positive_fraction(self):
        assert positive_fraction([0.5, 1.5, 2.0, 0.9]) == pytest.approx(0.5)

    def test_positive_geomean_only_winners(self):
        assert positive_geomean([0.1, 2.0, 8.0]) == pytest.approx(4.0)
        assert np.isnan(positive_geomean([0.5, 0.9]))

    def test_summary_quartiles(self):
        s = summarize_speedups([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.count == 5

    def test_best_of_per_matrix_max(self):
        per = {"a": [1.0, 0.5], "b": [0.8, 2.0]}
        assert best_of(per) == [1.0, 2.0]

    def test_best_of_rejects_misaligned(self):
        with pytest.raises(ValueError, match="misaligned"):
            best_of({"a": [1.0], "b": [1.0, 2.0]})


class TestProfiles:
    def test_amortization_excludes_non_improving(self):
        p = amortization_profile([1.0, 5.0, float("inf")], max_x=20)
        assert p.n_problems == 2
        assert p.fraction_at(20.0) == pytest.approx(1.0)
        assert p.fraction_at(2.0) == pytest.approx(0.5)

    def test_ratio_profile_cdf(self):
        p = ratio_profile([0.5, 1.0, 2.0, 4.0], max_x=5)
        assert p.fraction_at(1.0) == pytest.approx(0.5)
        assert p.fraction_at(5.0) == pytest.approx(1.0)

    def test_profile_points(self):
        p = ratio_profile([1.0], max_x=2, points=3)
        assert len(p.points()) == 3

    def test_empty_profile(self):
        p = amortization_profile([float("inf")])
        assert p.n_problems == 0
        assert np.isnan(p.fraction_at(1.0))


class TestRenderers:
    def test_box_figure_contains_rows(self):
        boxes = {"rcm": summarize_speedups([1.0, 2.0]), "gp": summarize_speedups([3.0])}
        out = render_box_figure("Fig 2", boxes)
        assert "rcm" in out and "gp" in out and "GM" in out

    def test_table2_layout(self):
        rows = {"hp": {"rowwise": [2.0, 1.5], "fixed": [1.2], "variable": [0.8]}}
        out = render_table2(rows)
        assert "hp" in out and "Pos.%" in out

    def test_dataset_bars(self):
        out = render_dataset_bars("Fig 8", ["cage12", "M6"], {"hier": [1.1, 1.4]})
        assert "cage12" in out and "1.40" in out

    def test_profile_render(self):
        p = ratio_profile([1.0, 2.0], max_x=4)
        out = render_profile("Fig 11", {"fixed": p}, xs=[1.0, 2.0, 4.0])
        assert "fixed" in out

    def test_matrix_table_with_mean(self):
        vals = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = render_matrix_table("Table 4", ["d1", "d2"], ["i1", "i2"], vals, mean_col=True)
        assert "Mean" in out and "d1" in out
        assert "1.50" in out  # mean of first row

    def test_nan_rendering(self):
        out = render_dataset_bars("x", ["d"], {"m": [float("nan")]})
        assert "n/a" in out
