"""Metrics, profiles and table renderer tests."""

import numpy as np
import pytest

from repro.analysis import (
    Profile,
    amortization_profile,
    best_of,
    geomean,
    positive_fraction,
    positive_geomean,
    ratio_profile,
    render_box_figure,
    render_dataset_bars,
    render_matrix_table,
    render_profile,
    render_table2,
    summarize_speedups,
)


class TestMetrics:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nan(self):
        assert geomean([2.0, float("nan"), 8.0]) == pytest.approx(4.0)

    def test_geomean_empty_is_nan(self):
        assert np.isnan(geomean([]))

    def test_positive_fraction(self):
        assert positive_fraction([0.5, 1.5, 2.0, 0.9]) == pytest.approx(0.5)

    def test_positive_geomean_only_winners(self):
        assert positive_geomean([0.1, 2.0, 8.0]) == pytest.approx(4.0)
        assert np.isnan(positive_geomean([0.5, 0.9]))

    def test_summary_quartiles(self):
        s = summarize_speedups([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        assert s.count == 5

    def test_best_of_per_matrix_max(self):
        per = {"a": [1.0, 0.5], "b": [0.8, 2.0]}
        assert best_of(per) == [1.0, 2.0]

    def test_best_of_rejects_misaligned(self):
        with pytest.raises(ValueError, match="misaligned"):
            best_of({"a": [1.0], "b": [1.0, 2.0]})


class TestProfiles:
    def test_amortization_excludes_non_improving(self):
        p = amortization_profile([1.0, 5.0, float("inf")], max_x=20)
        assert p.n_problems == 2
        assert p.fraction_at(20.0) == pytest.approx(1.0)
        assert p.fraction_at(2.0) == pytest.approx(0.5)

    def test_ratio_profile_cdf(self):
        p = ratio_profile([0.5, 1.0, 2.0, 4.0], max_x=5)
        assert p.fraction_at(1.0) == pytest.approx(0.5)
        assert p.fraction_at(5.0) == pytest.approx(1.0)

    def test_profile_points(self):
        p = ratio_profile([1.0], max_x=2, points=3)
        assert len(p.points()) == 3

    def test_empty_profile(self):
        p = amortization_profile([float("inf")])
        assert p.n_problems == 0
        assert np.isnan(p.fraction_at(1.0))


class TestRenderers:
    def test_box_figure_contains_rows(self):
        boxes = {"rcm": summarize_speedups([1.0, 2.0]), "gp": summarize_speedups([3.0])}
        out = render_box_figure("Fig 2", boxes)
        assert "rcm" in out and "gp" in out and "GM" in out

    def test_table2_layout(self):
        rows = {"hp": {"rowwise": [2.0, 1.5], "fixed": [1.2], "variable": [0.8]}}
        out = render_table2(rows)
        assert "hp" in out and "Pos.%" in out

    def test_dataset_bars(self):
        out = render_dataset_bars("Fig 8", ["cage12", "M6"], {"hier": [1.1, 1.4]})
        assert "cage12" in out and "1.40" in out

    def test_profile_render(self):
        p = ratio_profile([1.0, 2.0], max_x=4)
        out = render_profile("Fig 11", {"fixed": p}, xs=[1.0, 2.0, 4.0])
        assert "fixed" in out

    def test_matrix_table_with_mean(self):
        vals = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = render_matrix_table("Table 4", ["d1", "d2"], ["i1", "i2"], vals, mean_col=True)
        assert "Mean" in out and "d1" in out
        assert "1.50" in out  # mean of first row

    def test_nan_rendering(self):
        out = render_dataset_bars("x", ["d"], {"m": [float("nan")]})
        assert "n/a" in out


# ======================================================================
# Static-analysis checker suite (repro.analysis.checks)
# ======================================================================
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.checks import SCHEMA_VERSION, analyze_paths, render_json
from repro.analysis.checks.framework import analyze_file
from repro.analysis.checks.registry_scan import load_universe, validate_spec
from repro.analysis.checks.rules import ALL_RULES, default_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis_fixtures"


def _findings(path, *rule_ids):
    rules = default_rules(REPO_ROOT, only=rule_ids or None)
    return analyze_file(FIXTURES / path, rules, REPO_ROOT)


def _active(path, *rule_ids):
    return [f for f in _findings(path, *rule_ids) if not f.suppressed]


class TestRuleFixtures:
    """Each rule: one clean fixture stays silent, violating ones fire."""

    def test_ra001_clean(self):
        assert _active("repro/engine/ra001_clean.py", "RA001") == []

    @pytest.mark.parametrize(
        "fixture", ["repro/engine/ra001_direct_call.py", "repro/engine/ra001_attr_call.py"]
    )
    def test_ra001_violations(self, fixture):
        found = _active(fixture, "RA001")
        assert found and all(f.rule == "RA001" for f in found)
        assert "repro.backends.execute" in found[0].message

    def test_ra002_clean(self):
        assert _active("repro/engine/ra002_clean.py", "RA002") == []

    def test_ra002_unguarded_span(self):
        assert len(_active("repro/engine/ra002_unguarded_span.py", "RA002")) == 1

    def test_ra002_unguarded_and_late_guard(self):
        found = _active("repro/engine/ra002_unguarded_event.py", "RA002")
        assert len(found) == 2  # bare event + guard placed after the call

    def test_ra003_clean(self):
        assert _active("repro/engine/ra003_clean.py", "RA003") == []

    @pytest.mark.parametrize(
        "fixture, expected",
        [
            ("repro/engine/ra003_wallclock.py", 3),
            ("repro/engine/ra003_unseeded.py", 5),
            ("repro/engine/ra003_set_iter.py", 2),
        ],
    )
    def test_ra003_violations(self, fixture, expected):
        assert len(_active(fixture, "RA003")) == expected

    def test_ra004_register_sites(self):
        found = _active("repro/reordering/ra004_missing_family.py", "RA004")
        assert len(found) == 1  # fixture_tagged declares family=, fixture_order does not
        assert "family" in found[0].message

    def test_ra004_good_specs(self):
        assert _active("ra004_good_specs.py", "RA004") == []

    def test_ra004_bad_specs(self):
        messages = [f.message for f in _active("ra004_bad_specs.py", "RA004")]
        assert any("unknown component 'nosuchclustering'" in m for m in messages)
        assert any("requires a clustering" in m for m in messages)
        assert any("is a backend" in m for m in messages)
        assert any("vectorized_magic" in m for m in messages)  # PipelineSpec.parse arg

    def test_ra004_markdown(self):
        found = _findings("ra004_bad_specs.md", "RA004")
        active = [f for f in found if not f.suppressed]
        assert any("bogus_stage" in f.message for f in active)
        assert any("nosuchbackend" in f.message for f in active)  # fenced block
        suppressed = [f for f in found if f.suppressed]
        assert any("not_a_component" in f.message for f in suppressed)

    def test_ra005_clean(self):
        assert _active("repro/backends/ra005_clean.py", "RA005") == []

    def test_ra005_lambda_and_closure(self):
        messages = [f.message for f in _active("repro/backends/ra005_lambda.py", "RA005")]
        assert len(messages) == 2
        assert any("lambda" in m for m in messages)
        assert any("closure_worker" in m for m in messages)

    def test_ra005_state_capture(self):
        messages = [f.message for f in _active("repro/backends/ra005_state_capture.py", "RA005")]
        assert len(messages) == 2
        assert any("bound method" in m for m in messages)
        assert any("non-constant default" in m for m in messages)

    def test_ra006_bypass_tuple(self):
        found = _active("repro/engine/ra006_bypass.py", "RA006")
        assert len(found) == 1 and "PLANNER_REORDERINGS" in found[0].message

    def test_ra006_clean(self):
        assert _active("repro/engine/ra006_clean.py", "RA006") == []

    def test_ra002_applies_to_serve(self):
        found = _active("repro/serve/ra002_unguarded.py", "RA002")
        assert len(found) == 1 and found[0].line == 5

    def test_ra003_applies_to_serve(self):
        found = _active("repro/serve/ra003_wallclock.py", "RA003")
        assert len(found) == 1 and "time.time" in found[0].message

    def test_ra007_clean(self):
        # Condition.wait(timeout) with a monotonic deadline is the
        # sanctioned idiom — neither RA007 nor RA003 may fire on it.
        assert _active("repro/serve/ra007_clean.py", "RA007", "RA003") == []

    def test_ra007_sleeps(self):
        found = _active("repro/serve/ra007_sleep.py", "RA007")
        assert sorted(f.line for f in found) == [9, 14]
        assert all("sleep" in f.message for f in found)

    def test_ra008_raw_shm(self):
        found = _active("repro/backends/ra008_raw_shm.py", "RA008")
        # The import-from plus both call forms fire.
        assert sorted(f.line for f in found) == [4, 8, 12]
        assert all("operand store" in f.message or "operand_store" in f.message for f in found)

    def test_ra008_clean(self):
        assert _active("repro/backends/ra008_clean.py", "RA008") == []

    def test_ra008_owner_module_is_exempt(self):
        # repro/backends/operand_store.py is the one sanctioned owner.
        assert _active("repro/backends/operand_store.py", "RA008") == []

    def test_ra009_direct_construction(self):
        found = _active("repro/core/ra009_direct_construction.py", "RA009")
        # Both call forms fire (bare name + attribute); imports do not.
        assert sorted(f.line for f in found) == [8, 14]
        assert all("make_accumulator" in f.message for f in found)

    def test_ra009_clean(self):
        assert _active("repro/core/ra009_clean.py", "RA009") == []

    def test_ra009_owner_module_is_exempt(self):
        # The factory module constructs the classes it dispenses.
        assert _active("repro/core/accumulators.py", "RA009") == []


class TestSuppressions:
    def test_round_trip(self):
        found = _findings("repro/engine/ra001_suppressed.py", "RA001")
        assert len(found) == 1
        assert found[0].suppressed and found[0].suppression_reason == "fixture oracle path"
        assert all(f.suppressed for f in found)  # nothing gates

    def test_bare_suppression_is_ra000(self):
        found = _findings("repro/engine/ra000_bare_suppression.py", "RA001")
        by_rule = {f.rule for f in found}
        assert "RA000" in by_rule  # reasonless allow is itself a finding
        active = [f for f in found if not f.suppressed]
        assert [f.rule for f in active] == ["RA000"]


class TestReportAndCli:
    def test_json_envelope_schema(self):
        findings, files = analyze_paths(
            [FIXTURES / "repro" / "engine" / "ra001_direct_call.py"],
            default_rules(REPO_ROOT),
            REPO_ROOT,
        )
        env = json.loads(render_json(findings, files, rules={"RA001": "t"}))
        assert env["schema"] == SCHEMA_VERSION
        assert env["tool"] == "repro.analysis"
        assert set(env) == {"schema", "tool", "rules", "summary", "findings"}
        assert set(env["summary"]) == {"files", "findings", "suppressed", "by_rule"}
        for f in env["findings"]:
            assert {"rule", "severity", "path", "line", "col", "message", "suppressed"} <= set(f)

    def test_cli_gates_on_fixtures(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--rules", "RA001",
             str(FIXTURES / "repro" / "engine" / "ra001_direct_call.py")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "RA001" in proc.stdout

    def test_real_tree_is_clean(self):
        # The acceptance criterion: the committed tree carries no
        # unsuppressed finding (suppressions all carry reasons).
        findings, files = analyze_paths(
            [REPO_ROOT / p for p in ("src", "benchmarks", "examples", "README.md", "DESIGN.md")],
            default_rules(REPO_ROOT),
            REPO_ROOT,
        )
        active = [f for f in findings if not f.suppressed]
        assert active == [], [f"{f.path}:{f.line} {f.rule} {f.message}" for f in active]
        assert files > 50


class TestStaticRegistryScan:
    def test_universe_matches_live_registry(self):
        # The static AST extraction must agree with what actually
        # registers at import time — otherwise RA004 drifts silently.
        from repro.pipeline import components

        uni = load_universe(REPO_ROOT)
        for kind, static_names in (
            ("reordering", set(uni.reorderings)),
            ("clustering", set(uni.clusterings)),
            ("kernel", set(uni.kernels)),
            ("backend", set(uni.backends)),
        ):
            live = {c.name for c in components(kind)}
            assert static_names >= live, (kind, live - static_names)

    def test_static_validation_agrees_with_parse(self):
        from repro.pipeline import PipelineSpec

        uni = load_universe(REPO_ROOT)
        valid = ["rcm+fixed:8+cluster", "original+none+rowwise", "rcm+fixed:8+cluster@scipy"]
        for text in valid:
            assert validate_spec(text, uni) == []
            PipelineSpec.parse(text)  # and the runtime agrees
        invalid = ["rcm+nope+cluster", "rcm+fixed:8+cluster+scipy", "rcm+none+cluster"]
        for text in invalid:
            assert validate_spec(text, uni), text
            with pytest.raises((KeyError, ValueError)):
                PipelineSpec.parse(text)

    def test_kernel_tags_extracted(self):
        uni = load_universe(REPO_ROOT)
        assert uni.kernels["cluster"] is True  # requires_clustering
        assert uni.kernels["rowwise"] is False
