"""Workload tests: A², BC frontiers, betweenness centrality."""

import numpy as np
import networkx as nx
import pytest

from repro.core import CSRMatrix, spgemm_rowwise
from repro.workloads import ASquareWorkload, bc_frontiers, betweenness_centrality

from conftest import random_csr


class TestASquare:
    def test_invariants_computed_once(self):
        A = random_csr(30, 30, 0.12, seed=61)
        wl = ASquareWorkload.of(A)
        C, stats = wl.compute()
        assert stats.flops == wl.flops
        assert C.nnz == wl.out_nnz

    def test_rejects_rectangular(self):
        A = random_csr(4, 6, 0.5, seed=62)
        with pytest.raises(ValueError, match="square"):
            ASquareWorkload.of(A)

    def test_reordered_product_is_permuted(self, rng):
        A = random_csr(20, 20, 0.2, seed=63)
        wl = ASquareWorkload.of(A)
        perm = rng.permutation(20)
        Ar = wl.reordered(perm)
        Cr = spgemm_rowwise(Ar, Ar)
        C = spgemm_rowwise(A, A)
        assert Cr.allclose(C.permute_symmetric(perm))


class TestFrontiers:
    def graph(self, n=60, seed=64):
        return random_csr(n, n, 0.08, seed=seed)

    def test_fixed_depth(self):
        A = self.graph()
        fs = bc_frontiers(A, batch=8, depth=10, seed=1)
        assert len(fs) == 10
        for F in fs.frontiers:
            assert F.shape == (60, 8)

    def test_frontiers_are_disjoint_per_source(self):
        """BFS visits each (vertex, source) pair at most once."""
        A = self.graph()
        fs = bc_frontiers(A, batch=6, depth=10, seed=2)
        seen = set()
        for F in fs.frontiers:
            coo = F.to_coo()
            for v, s in zip(coo.rows.tolist(), coo.cols.tolist()):
                assert (v, s) not in seen
                seen.add((v, s))

    def test_first_frontier_are_source_neighbours(self):
        A = self.graph()
        fs = bc_frontiers(A, batch=4, depth=3, seed=3)
        F1 = fs.frontiers[0]
        for s, src in enumerate(fs.sources.tolist()):
            cols = set(A.row_cols(src).tolist()) - {src}
            got = set(F1.to_coo().rows[F1.to_coo().cols == s].tolist())
            assert got <= cols | {src}

    def test_sigma_values_are_path_counts(self):
        # Diamond 0→1, 0→2, 1→3, 2→3: sigma(3) = 2 at depth 2.
        dense = np.zeros((4, 4))
        dense[0, 1] = dense[0, 2] = dense[1, 3] = dense[2, 3] = 1.0
        A = CSRMatrix.from_dense(dense)
        fs = bc_frontiers(A, batch=4, depth=3, seed=0)
        # Find source 0's column.
        s0 = int(np.flatnonzero(fs.sources == 0)[0])
        F2 = fs.frontiers[1].to_dense()
        assert F2[3, s0] == 2.0

    def test_aligned_permutes_rows(self, rng):
        A = self.graph()
        fs = bc_frontiers(A, batch=4, depth=2, seed=4)
        perm = rng.permutation(60)
        al = fs.aligned(perm)
        assert np.array_equal(al.frontiers[0].to_dense(), fs.frontiers[0].to_dense()[perm])

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            bc_frontiers(random_csr(4, 5, 0.5, seed=65))

    def test_exhausted_graph_emits_empty_frontiers(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = 1.0
        A = CSRMatrix.from_dense(dense)
        fs = bc_frontiers(A, batch=1, depth=5, seed=0)
        assert len(fs) == 5
        assert fs.frontiers[-1].nnz == 0


class TestBetweenness:
    @pytest.mark.parametrize("directed", [True, False])
    def test_exact_matches_networkx(self, directed):
        n = 35
        G = nx.gnp_random_graph(n, 0.12, seed=7, directed=directed)
        dense = np.zeros((n, n))
        for u, v in G.edges:
            dense[u, v] = 1.0
            if not directed:
                dense[v, u] = 1.0
        A = CSRMatrix.from_dense(dense)
        ours = betweenness_centrality(A, sources=np.arange(n))
        ref = nx.betweenness_centrality(G if directed else G.to_directed(), normalized=False)
        assert np.allclose(ours, [ref[i] for i in range(n)], atol=1e-9)

    def test_normalized(self):
        n = 20
        G = nx.gnp_random_graph(n, 0.2, seed=8, directed=True)
        dense = np.zeros((n, n))
        for u, v in G.edges:
            dense[u, v] = 1.0
        A = CSRMatrix.from_dense(dense)
        ours = betweenness_centrality(A, sources=np.arange(n), normalized=True)
        ref = nx.betweenness_centrality(G, normalized=True)
        assert np.allclose(ours, [ref[i] for i in range(n)], atol=1e-9)

    def test_sampled_sources_subset(self):
        A = random_csr(40, 40, 0.1, seed=66)
        bc = betweenness_centrality(A, batch=5, seed=1)
        assert bc.shape == (40,)
        assert np.all(bc >= -1e-12)
