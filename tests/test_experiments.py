"""Experiment runner + cache integration tests (small matrices only)."""

import numpy as np
import pytest

from repro.core import CSRMatrix
from repro.experiments import (
    ExperimentConfig,
    cached_matrix_sweep,
    machine_for,
    run_matrix_sweep,
    run_tallskinny_sweep,
)
from repro.matrices import generators as G

SMALL_CFG = ExperimentConfig(n_threads=2, cache_lines=64)


def test_sweep_contains_all_configurations():
    s = run_matrix_sweep("unit", SMALL_CFG, A=G.block_diagonal(8, 8, seed=1), reorderings=("shuffled", "rcm"))
    assert set(s.rowwise) == {"original", "shuffled", "rcm"}
    assert set(s.fixed) == {"original", "shuffled", "rcm"}
    assert set(s.variable) == {"original", "shuffled", "rcm"}
    assert s.hierarchical is not None
    assert s.hierarchical_rowwise is not None
    assert set(s.memory_ratio) == {"fixed", "variable", "hierarchical"}


def test_sweep_baseline_speedup_is_one():
    s = run_matrix_sweep("unit", SMALL_CFG, A=G.grid2d(8, 8, seed=2), reorderings=())
    assert s.speedup("rowwise", "original") == pytest.approx(1.0)


def test_sweep_records_preprocessing_time():
    s = run_matrix_sweep("unit", SMALL_CFG, A=G.grid2d(8, 8, seed=3), reorderings=("rcm",))
    assert s.rowwise["rcm"].pre_time > 0
    assert s.fixed["rcm"].pre_time > s.rowwise["rcm"].pre_time  # adds cluster build


def test_shuffle_hurts_structured_matrix():
    A = G.block_diagonal(10, 12, seed=4)
    s = run_matrix_sweep("unit", SMALL_CFG, A=A, reorderings=("shuffled",), with_clustering=False)
    assert s.speedup("rowwise", "shuffled") < 1.0


def test_amortization_iterations_consistent():
    A = G.block_diagonal(10, 12, seed=5)
    from repro.matrices import scramble

    s = run_matrix_sweep("unit", SMALL_CFG, A=scramble(A, seed=1), reorderings=("rcm",), with_clustering=False)
    rec = s.rowwise["rcm"]
    it = rec.amortization_iterations(s.baseline_time)
    if rec.time < s.baseline_time:
        assert it == pytest.approx(rec.pre_time / (s.baseline_time - rec.time))
    else:
        assert it == float("inf")


def test_tallskinny_sweep_shape():
    A = G.grid2d(10, 10, seed=6)
    res = run_tallskinny_sweep("unit", SMALL_CFG, A=A, batch=4, depth=5, reorderings=("rcm",))
    assert "rcm" in res.rowwise_speedup
    assert len(res.hierarchical_speedup) == 5


def test_cached_sweep_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)  # test the cache even when CI disables it
    cfg = ExperimentConfig(n_threads=2, cache_lines=64, reorderings=("shuffled",))
    s1 = cached_matrix_sweep("grid2d_5pt_0", cfg)
    s2 = cached_matrix_sweep("grid2d_5pt_0", cfg)  # from disk
    assert s1.baseline_time == s2.baseline_time
    assert (tmp_path / f"sweep_grid2d_5pt_0_{cfg.cache_key()}.pkl").exists()


def test_cache_key_changes_with_config():
    a = ExperimentConfig(cache_lines=64).cache_key()
    b = ExperimentConfig(cache_lines=128).cache_key()
    assert a != b


def test_machine_for_uses_config():
    m = machine_for(ExperimentConfig(n_threads=3, cache_lines=99))
    assert m.n_threads == 3 and m.cache_lines == 99
