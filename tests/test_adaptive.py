"""The adaptive runtime (DESIGN.md §11): measured backend calibration,
drift-triggered re-planning with hysteresis, cost-aware plan-cache
eviction and warm starts — unit coverage plus the ISSUE 4 end-to-end
acceptance scenario."""

import json

import numpy as np
import pytest

from conftest import assert_bitwise_equal, scrambled_blocks_matrix
from repro.core import spgemm_rowwise
from repro.engine import (
    AdaptiveConfig,
    BackendCalibrator,
    CalibrationTable,
    DriftMonitor,
    PlanCache,
    SpGEMMEngine,
    calibration_path,
    feature_distance,
)
from repro.engine.adaptive import density_bin, row_bin, size_bin
from repro.experiments import ExperimentConfig
from repro.matrices import generators as G
from repro.matrices import perturb_values

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

SMALL_CFG = ExperimentConfig(n_threads=2, cache_lines=128)


# ----------------------------------------------------------------------
# AdaptiveConfig validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kw",
    [
        {"drift_threshold": 1.0},
        {"drift_threshold": 0.5},
        {"patience": 0},
        {"cooldown": -1},
        {"probe_every": 0},
        {"max_replans": -1},
    ],
)
def test_adaptive_config_rejects_bad_knobs(kw):
    with pytest.raises(ValueError):
        AdaptiveConfig(**kw)


# ----------------------------------------------------------------------
# DriftMonitor: the hysteresis state machine
# ----------------------------------------------------------------------
def test_monitor_stable_when_executed_equals_predicted():
    mon = DriftMonitor(AdaptiveConfig(drift_threshold=1.5, patience=1))
    for _ in range(20):
        assert not mon.observe("k", predicted=100.0, executed=100.0)
    assert mon.state("k")["drifting_probes"] == 0


def test_monitor_needs_patience_consecutive_drifts():
    mon = DriftMonitor(AdaptiveConfig(drift_threshold=1.5, patience=3))
    assert not mon.observe("k", predicted=100.0, executed=400.0)
    assert not mon.observe("k", predicted=100.0, executed=400.0)
    # A stable probe in between resets the streak.
    assert not mon.observe("k", predicted=100.0, executed=100.0)
    assert not mon.observe("k", predicted=100.0, executed=400.0)
    assert not mon.observe("k", predicted=100.0, executed=400.0)
    assert mon.observe("k", predicted=100.0, executed=400.0)


def test_monitor_detects_drift_in_both_directions():
    mon = DriftMonitor(AdaptiveConfig(drift_threshold=2.0, patience=1))
    assert mon.observe("slow", predicted=100.0, executed=250.0)  # too slow
    assert mon.observe("fast", predicted=100.0, executed=30.0)  # leaving wins on the table
    assert not mon.observe("ok", predicted=100.0, executed=150.0)  # inside the band


def test_monitor_cooldown_swallows_probes_after_replan():
    mon = DriftMonitor(AdaptiveConfig(drift_threshold=1.5, patience=1, cooldown=2))
    assert mon.observe("k", predicted=100.0, executed=400.0)
    mon.notify_replanned("k")
    # Two drifting probes fall into the cooldown window …
    assert not mon.observe("k", predicted=100.0, executed=400.0)
    assert not mon.observe("k", predicted=100.0, executed=400.0)
    # … the third fires again.
    assert mon.observe("k", predicted=100.0, executed=400.0)


def test_monitor_max_replans_cap():
    mon = DriftMonitor(AdaptiveConfig(drift_threshold=1.5, patience=1, cooldown=0, max_replans=2))
    fired = 0
    for _ in range(10):
        if mon.observe("k", predicted=100.0, executed=400.0):
            mon.notify_replanned("k")
            fired += 1
    assert fired == 2


def test_monitor_probe_cadence():
    mon = DriftMonitor(AdaptiveConfig(probe_every=3))
    probes = [mon.should_probe("k") for _ in range(7)]
    assert probes == [True, False, False, True, False, False, True]


def test_monitor_ignores_degenerate_costs():
    mon = DriftMonitor(AdaptiveConfig(drift_threshold=1.5, patience=1))
    assert not mon.observe("k", predicted=0.0, executed=100.0)
    assert not mon.observe("k", predicted=float("nan"), executed=100.0)
    assert not mon.observe("k", predicted=100.0, executed=float("inf"))


# ----------------------------------------------------------------------
# CalibrationTable: bins, lookup, persistence
# ----------------------------------------------------------------------
def test_bins_are_monotone_partitions():
    assert [size_bin(n) for n in (10, 256, 1024, 4096, 10**6)] == [0, 1, 2, 3, 3]
    assert [row_bin(r) for r in (0.0, 3.9, 4.0, 15.9, 16.0)] == [0, 0, 1, 1, 2]
    assert [density_bin(d) for d in (1e-4, 1e-2, 0.05, 0.1, 0.9)] == [0, 1, 1, 2, 2]


def test_table_factor_exact_fallback_and_absent():
    table = CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.02, "scipy|rowwise|s2r1d0": 0.08})
    # Exact bin.
    assert table.factor("scipy", "rowwise", n=500, nnz_row=8, density=0.02) == 0.02
    # Unvisited bin → geomean of the backend's measured bins.
    fallback = table.factor("scipy", "rowwise", n=100, nnz_row=2, density=0.5)
    assert fallback == pytest.approx((0.02 * 0.08) ** 0.5)
    # Never calibrated at all → None (caller keeps the static hint).
    assert table.factor("vectorized", "cluster", n=500, nnz_row=8, density=0.02) is None
    # Degenerate persisted factors never win a ranking: a non-positive
    # exact entry is ignored (geomean fallback / static hint instead).
    bad = CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.0})
    assert bad.factor("scipy", "rowwise", n=500, nnz_row=8, density=0.02) is None
    assert CalibrationTable.from_dict(
        {"entries": {"scipy|rowwise|s1r1d1": 0.0, "scipy|rowwise|s2r1d0": 0.05}}
    ).entries == {"scipy|rowwise|s2r1d0": 0.05}


def test_table_factor_parameterised_backend_keys():
    from repro.engine.adaptive import calibration_backend_key

    assert calibration_backend_key("scipy") == "scipy"
    assert (
        calibration_backend_key("sharded", (("inner", "scipy"), ("workers", 2)))
        == "sharded:inner=scipy,workers=2"
    )
    table = CalibrationTable(
        entries={"sharded:workers=2|cluster|s1r1d1": 0.9, "sharded|cluster|s1r1d1": 0.6}
    )
    # The configuration-specific row wins over the bare name.
    assert table.factor("sharded:workers=2", "cluster", n=500, nnz_row=8, density=0.02) == 0.9
    # An uncalibrated configuration falls back to bare-name rows.
    assert table.factor("sharded:workers=4", "cluster", n=500, nnz_row=8, density=0.02) == 0.6
    # Nothing under the name at all → None.
    assert table.factor("sharded:workers=4", "rowwise", n=500, nnz_row=8, density=0.02) is None


def test_table_roundtrip_and_epoch(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    table = CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.02}, epoch=3, host="t")
    table.save()
    loaded = CalibrationTable.load()
    assert loaded is not None
    assert loaded.entries == table.entries and loaded.epoch == 3 and loaded.host == "t"


def test_table_respects_no_cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.5}).save()
    assert not list(tmp_path.rglob("calibration.json"))
    assert CalibrationTable.load() is None


def test_table_warns_on_corrupt_file(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.5}).save()
    calibration_path().write_text("{broken")
    with pytest.warns(UserWarning, match="corrupt calibration table"):
        assert CalibrationTable.load() is None


def test_calibrator_validates_reps():
    with pytest.raises(ValueError, match="reps"):
        BackendCalibrator(reps=0)


@pytest.fixture(scope="module")
def calibration_table():
    """One real (cheap) calibration shared by the tests below."""
    return BackendCalibrator(reps=1).calibrate()


def test_calibrator_measures_planner_ranked_backends(calibration_table):
    backends = {key.split("|")[0] for key in calibration_table.entries}
    assert "scipy" in backends  # the test env has scipy
    assert "vectorized" in backends
    assert "reference" not in backends  # the unit everything is relative to
    assert all(v > 0 for v in calibration_table.entries.values())
    assert calibration_table.epoch == 1
    # Re-calibrating against a previous table advances the epoch.
    assert BackendCalibrator(reps=1).calibrate(previous=calibration_table).epoch == 2


def test_calibrator_measures_sharded_pool_configs(calibration_table):
    # The PR 4 remainder: with the shm data plane, sharded pool
    # configurations are worth their own calibration rows (keyed by the
    # canonical parameterised spec), not a guessed static factor.
    backends = {key.split("|")[0] for key in calibration_table.entries}
    assert "sharded:workers=2" in backends
    assert BackendCalibrator().pool_configs == ("sharded:workers=2",)
    # An explicit empty tuple opts out.
    lean = BackendCalibrator(reps=1, pool_configs=())
    assert all(name != "sharded:workers=2" for name, _, _ in lean._specs())


def test_calibration_matrices_cover_the_top_size_bin(calibration_table):
    # The sharded/scipy break-even is size-dependent (BENCH_backends):
    # the n >= 4096 bin must be measured, not inferred from small bins.
    assert any("|s3" in key for key in calibration_table.entries)


def test_cache_token_uses_content_digest_not_epoch():
    # Epoch counters reset when calibration.json disappears; two tables
    # sharing an epoch but measuring different factors must never share
    # a cache token (the digest is content-based).
    from repro.engine.planner import HeuristicPlanner

    t1 = CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.02}, epoch=1)
    t2 = CalibrationTable(entries={"scipy|rowwise|s1r1d1": 0.70}, epoch=1)
    p1 = HeuristicPlanner(cfg=SMALL_CFG, calibration=t1)
    p2 = HeuristicPlanner(cfg=SMALL_CFG, calibration=t2)
    assert t1.digest != t2.digest
    assert p1.cache_token != p2.cache_token
    assert CalibrationTable(entries=dict(t1.entries), epoch=9).digest == t1.digest


# ----------------------------------------------------------------------
# Engine integration: calibration
# ----------------------------------------------------------------------
def test_calibrated_plans_record_epoch_and_stay_correct(calibration_table, gainful_matrix):
    A = gainful_matrix
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, backend="auto", calibration=calibration_table)
    plan = eng.plan_for(A)
    assert plan.calibration_epoch == calibration_table.epoch
    C = eng.multiply(A)
    ref = spgemm_rowwise(A, A)
    assert C.same_pattern(ref) and np.allclose(C.to_dense(), ref.to_dense())


def test_uncalibrated_plans_record_epoch_zero(gainful_matrix):
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG)
    plan = eng.plan_for(gainful_matrix)
    assert plan.calibration_epoch == 0
    # The default cache token is byte-identical to the pre-adaptive
    # format — old persisted plans keep hitting for default engines.
    assert ":c" not in eng.planner.cache_token


def test_calibration_epoch_discriminates_cache_tokens(calibration_table, gainful_matrix):
    static = SpGEMMEngine(policy="heuristic", config=SMALL_CFG)
    calibrated = SpGEMMEngine(policy="heuristic", config=SMALL_CFG, calibration=calibration_table)
    assert static.planner.cache_token != calibrated.planner.cache_token


@pytest.mark.parametrize(
    "kw",
    [
        {"policy": "heuristic"},
        {"policy": "autotune"},
        {"policy": "predictor"},
        {"pipeline": "rcm+fixed:8+cluster"},
    ],
)
def test_every_planner_token_carries_the_calibration_digest(calibration_table, kw):
    # A subclass overriding cache_token (the pipeline planner did) must
    # still append the digest, or calibrated and uncalibrated plans
    # would share persisted cache keys.
    static = SpGEMMEngine(config=SMALL_CFG, **kw)
    calibrated = SpGEMMEngine(config=SMALL_CFG, calibration=calibration_table, **kw)
    assert f":c{calibration_table.digest}" in calibrated.planner.cache_token
    assert static.planner.cache_token != calibrated.planner.cache_token


def test_engine_rejects_bad_calibration_argument():
    with pytest.raises(TypeError, match="calibration"):
        SpGEMMEngine(config=SMALL_CFG, calibration=42)


def test_engine_calibration_true_without_table_is_static(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    eng = SpGEMMEngine(config=SMALL_CFG, calibration=True)
    assert eng.calibration is None  # nothing persisted → static hints


# ----------------------------------------------------------------------
# Engine integration: drift-triggered re-planning
# ----------------------------------------------------------------------
def test_no_drift_when_nothing_changes(gainful_matrix):
    A = gainful_matrix
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, drift_threshold=1.2)
    for _ in range(4):
        eng.multiply(A)
    s = eng.stats()
    assert s.drift_probes == 4
    assert s.drift_detected == 0 and s.replans == 0
    assert eng.drift_state(A)["last_ratio"] == pytest.approx(1.0)


def test_probe_cost_stays_out_of_amortisation_economics(gainful_matrix):
    # Probes are measurement, not investment: with drift armed, the
    # ledger must report the same break-even economics as without it
    # (a real runtime reads executed cost off a timer for free).
    A = gainful_matrix
    plain = SpGEMMEngine(policy="autotune", config=SMALL_CFG)
    armed = SpGEMMEngine(policy="autotune", config=SMALL_CFG, drift_threshold=1.5)
    for _ in range(5):
        plain.multiply(A)
        armed.multiply(A)
    sp_, sa = plain.stats(), armed.stats()
    assert sa.model_probe_cost > 0
    assert sa.invested_cost == sp_.invested_cost
    assert sa.break_even_iterations() == pytest.approx(sp_.break_even_iterations())


def test_drift_disabled_by_default(gainful_matrix):
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG)
    eng.multiply(gainful_matrix)
    assert eng.stats().drift_probes == 0
    assert eng.drift_state(gainful_matrix) is None


def test_end_to_end_drift_triggers_replan_and_plan_switch(gainful_matrix):
    """ISSUE 4 acceptance: perturbing the right operand's values so the
    cluster profile degrades makes the engine re-trial and switch plans,
    with the re-plan event recorded in EngineStats — and every result
    stays bitwise-identical to the row-wise oracle throughout."""
    A = gainful_matrix
    # Pin the historical kernel space: the scenario needs the clustered
    # plan to win so the value perturbation can degrade its profile
    # (the hybrid kernel's cost is pattern-only and would never drift).
    eng = SpGEMMEngine(
        policy="autotune", config=SMALL_CFG, drift_threshold=1.5,
        kernels=("rowwise", "cluster"),
    )
    B0 = perturb_values(A, scale=0.0, seed=0)  # value-twin, same profile
    assert_bitwise_equal(eng.multiply(A, B0), spgemm_rowwise(A, B0))
    plan_before = eng.plan_for(A, B0)
    assert plan_before.clustering is not None  # the gainful plan clusters

    # Values change: 95% of couplings vanish, gutting the cluster profile.
    B1 = perturb_values(A, scale=0.1, seed=3, dropout=0.95)
    for _ in range(5):
        assert_bitwise_equal(eng.multiply(A, B1), spgemm_rowwise(A, B1))

    s = eng.stats()
    assert s.drift_detected >= 2  # patience=2 consecutive drifting probes
    assert s.replans == 1
    (event,) = s.replan_log
    assert event["from"] == plan_before.label
    assert event["executed"] < event["predicted"]  # profile collapsed → cheaper
    plan_after = eng.plan_for(A, B1)
    assert plan_after.label != plan_before.label  # the engine switched plans
    assert event["to"] == plan_after.label
    assert set(s.per_plan) == {plan_before.label, plan_after.label}


def test_replan_hysteresis_bounds_replans_under_alternation(gainful_matrix):
    """Alternating operands drift on every probe, but cooldown+patience
    keep the re-plan count far below the multiply count."""
    A = gainful_matrix
    cfg = AdaptiveConfig(drift_threshold=1.5, patience=2, cooldown=2, max_replans=3)
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, adaptive=cfg)
    B0 = perturb_values(A, scale=0.0, seed=0)
    B1 = perturb_values(A, scale=0.1, seed=3, dropout=0.9)
    eng.multiply(A, B0)
    for i in range(12):
        eng.multiply(A, B1 if i % 2 else B0)
    assert eng.stats().replans <= 3


def test_multiply_many_probes_once_per_batch(gainful_matrix):
    # The batch API runs one plan for the whole sequence, so it takes
    # one drift probe per batch (on the freshest frontier).
    from repro.workloads import bc_frontiers

    A = gainful_matrix
    frontiers = bc_frontiers(A, batch=8, depth=4, seed=2).frontiers
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, drift_threshold=1.5)
    eng.multiply_many(A, frontiers)
    eng.multiply_many(A, frontiers)
    assert eng.stats().drift_probes == 2


def test_drift_state_is_read_only_and_workload_keyed(gainful_matrix):
    A = gainful_matrix
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, drift_threshold=1.5)
    B = perturb_values(A, scale=0.0, seed=0)
    eng.multiply(A, B)  # distinct B → workload "general"
    assert eng.drift_state(A, workload="general")["probes"] == 1
    # Asking with the wrong workload reads an untouched (all-zero)
    # snapshot and must not allocate monitor state for the unused key.
    before = len(eng._drift._states)
    assert eng.drift_state(A)["probes"] == 0
    assert len(eng._drift._states) == before


def test_from_dict_clamps_epoch_to_calibrated_range():
    # Epoch 0 is reserved for "static hints"; a loaded table must never
    # carry it or calibrated plans would share uncalibrated cache keys.
    table = CalibrationTable.from_dict({"entries": {"scipy|rowwise|s1r1d1": 0.05}, "epoch": 0})
    assert table.epoch == 1


def test_warm_starts_counted_only_when_hint_applies():
    # The nearest neighbour's plan uses a square-only reordering; for a
    # rectangular operand the hint cannot apply and must not be counted.
    A = scrambled_blocks_matrix(24, 16)
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, warm_start=True)
    eng.multiply(A)
    plan = eng.plan_for(A)
    if plan.reordering == "original":
        pytest.skip("gainful plan unexpectedly kept the natural order")
    rect = A.extract_rows(np.arange(A.nrows // 2))
    eng.multiply(rect, A)
    assert eng.stats().warm_starts == 0


def test_drift_threshold_overrides_adaptive_config(gainful_matrix):
    eng = SpGEMMEngine(
        config=SMALL_CFG,
        adaptive=AdaptiveConfig(drift_threshold=5.0, patience=4),
        drift_threshold=1.25,
    )
    assert eng._drift.config.drift_threshold == 1.25
    assert eng._drift.config.patience == 4  # the rest of the config survives


# ----------------------------------------------------------------------
# Engine integration: warm starts
# ----------------------------------------------------------------------
def test_cold_lookup_warm_starts_from_nearest_neighbour():
    A = scrambled_blocks_matrix(24, 16)
    A2 = scrambled_blocks_matrix(24, 16, seed=2, scramble_seed=9)  # same family, new pattern
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG, warm_start=True)
    eng.multiply(A)
    assert eng.stats().warm_starts == 0  # nothing cached yet
    assert_bitwise_equal(eng.multiply(A2), spgemm_rowwise(A2, A2))
    s = eng.stats()
    assert s.warm_starts == 1
    assert s.plans_built == 2


def test_warm_start_off_by_default(gainful_matrix):
    eng = SpGEMMEngine(policy="autotune", config=SMALL_CFG)
    eng.multiply(gainful_matrix)
    eng.multiply(G.grid2d(8, 8, seed=1))
    assert eng.stats().warm_starts == 0


def test_warm_start_skipped_for_policies_that_ignore_the_hint(gainful_matrix):
    # Ranking-only policies never consume the hint, so the engine must
    # not scan neighbours (or report warm starts) on their behalf.
    eng = SpGEMMEngine(policy="heuristic", config=SMALL_CFG, warm_start=True)
    eng.multiply(gainful_matrix)
    eng.multiply(G.grid2d(8, 8, seed=1))
    assert eng.stats().warm_starts == 0


def test_feature_distance_properties():
    a = (1.0, 100.0, 0.5)
    assert feature_distance(a, a) == 0.0
    assert feature_distance(a, (2.0, 100.0, 0.5)) > 0.0
    assert feature_distance(a, (1.0, 100.0)) == float("inf")  # shape mismatch
    # Scale invariance: doubling both vectors leaves the distance alone.
    b = (2.0, 150.0, 0.25)
    assert feature_distance(a, b) == pytest.approx(
        feature_distance(tuple(2 * x for x in a), tuple(2 * x for x in b))
    )


# ----------------------------------------------------------------------
# Fingerprint memo LRU (constructor-parameterised)
# ----------------------------------------------------------------------
def test_fingerprint_cache_size_is_constructor_parameter():
    eng = SpGEMMEngine(config=SMALL_CFG, fingerprint_cache_size=2)
    mats = [G.grid2d(4 + i, 4, seed=i) for i in range(3)]
    for A in mats:
        eng._fingerprint(A)
    assert len(eng._fingerprints) == 2  # capacity bound respected
    # The oldest entry was evicted; the two recent ones survive.
    from repro.engine.fingerprint import pattern_digest

    assert pattern_digest(mats[0]) not in eng._fingerprints
    assert pattern_digest(mats[2]) in eng._fingerprints
    # Re-fingerprinting an evicted pattern is correct (recomputed, re-memoised).
    fp = eng._fingerprint(mats[0])
    assert fp.key.startswith(f"{mats[0].nrows}x")


def test_fingerprint_memo_is_lru_not_fifo():
    eng = SpGEMMEngine(config=SMALL_CFG, fingerprint_cache_size=2)
    A, B, C = (G.grid2d(4 + i, 4, seed=i) for i in range(3))
    eng._fingerprint(A)
    eng._fingerprint(B)
    eng._fingerprint(A)  # touch A → B is now least-recently-used
    eng._fingerprint(C)
    from repro.engine.fingerprint import pattern_digest

    assert pattern_digest(A) in eng._fingerprints
    assert pattern_digest(B) not in eng._fingerprints


# ----------------------------------------------------------------------
# Plan cache: cost-aware eviction + persisted features
# ----------------------------------------------------------------------
def _plan(invested: float, key: str = "k"):
    from repro.engine import ExecutionPlan

    return ExecutionPlan(
        reordering="original",
        clustering=None,
        kernel="rowwise",
        fingerprint_key=key,
        predicted_cost=10.0,
        baseline_cost=20.0,
        pre_cost=invested / 2,
        planning_cost=invested / 2,
    )


def test_cost_aware_eviction_evicts_cheapest_to_replan_first():
    cache = PlanCache(capacity=2)
    cache.put("cheap", _plan(10.0))
    cache.put("expensive", _plan(1000.0))
    cache.get("cheap")  # recency must NOT save the cheap entry
    cache.put("mid", _plan(100.0))
    assert "expensive" in cache and "mid" in cache
    assert "cheap" not in cache
    assert cache.stats()["eviction"] == "cost"


def test_cost_aware_eviction_breaks_ties_by_lru():
    cache = PlanCache(capacity=2)
    cache.put("a", _plan(50.0))
    cache.put("b", _plan(50.0))
    cache.get("a")  # equal costs → LRU decides: b is older
    cache.put("c", _plan(50.0))
    assert "a" in cache and "c" in cache and "b" not in cache


def test_lru_eviction_policy_still_available():
    cache = PlanCache(capacity=2, eviction="lru")
    cache.put("cheap", _plan(10.0))
    cache.put("expensive", _plan(1000.0))
    cache.get("cheap")
    cache.put("mid", _plan(100.0))
    assert "cheap" in cache and "mid" in cache
    assert "expensive" not in cache  # recency-only: cost is ignored
    with pytest.raises(ValueError, match="eviction"):
        PlanCache(eviction="random")


def test_features_persist_with_plans(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    feats = (1.0, 2.0, 3.0)
    PlanCache(persist=True).put("key1", _plan(10.0), features=feats)
    fresh = PlanCache(persist=True)
    assert fresh.get("key1") is not None
    assert fresh.features_for("key1") == feats
    (path,) = list(tmp_path.rglob("plan_*.json"))
    payload = json.loads(path.read_text())
    assert payload["features"] == [1.0, 2.0, 3.0]
    assert "plan" in payload


def test_nearest_neighbour_lookup():
    cache = PlanCache()
    cache.put("a", _plan(10.0, "a"), features=(1.0, 1.0))
    cache.put("b", _plan(10.0, "b"), features=(100.0, 100.0))
    cache.put("nofeat", _plan(10.0, "c"))
    near = cache.nearest((1.1, 0.9))
    assert near is not None and near.fingerprint_key == "a"
    # exclude= skips the queried key itself.
    assert cache.nearest((1.1, 0.9), exclude="a").fingerprint_key == "b"
    assert PlanCache().nearest((1.0,)) is None
