"""Property-based tests (hypothesis) for the adaptive layer (ISSUE 4):

(a) drift detection never fires while executed cost equals predicted;
(b) hysteresis bounds the number of re-plans under *adversarial* noisy
    cost sequences;
(c) cost-aware eviction never evicts the most-expensive-to-replan entry
    while a cheaper one exists.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import AdaptiveConfig, DriftMonitor, ExecutionPlan, PlanCache


def _configs():
    return st.builds(
        AdaptiveConfig,
        drift_threshold=st.floats(min_value=1.01, max_value=10.0, allow_nan=False),
        patience=st.integers(1, 5),
        cooldown=st.integers(0, 5),
        probe_every=st.integers(1, 4),
        max_replans=st.integers(0, 10),
    )


def _plan(invested: float) -> ExecutionPlan:
    return ExecutionPlan(
        reordering="original",
        clustering=None,
        kernel="rowwise",
        predicted_cost=10.0,
        baseline_cost=20.0,
        pre_cost=invested,
        planning_cost=0.0,
    )


# ----------------------------------------------------------------------
# (a) executed == predicted → never a drift, never a re-plan
# ----------------------------------------------------------------------
@given(
    config=_configs(),
    costs=st.lists(st.floats(min_value=1e-6, max_value=1e9, allow_nan=False), min_size=1, max_size=60),
)
@settings(max_examples=60, deadline=None)
def test_drift_never_fires_when_executed_equals_predicted(config, costs):
    mon = DriftMonitor(config)
    for c in costs:
        assert not mon.observe("k", predicted=c, executed=c)
    st_ = mon.state("k")
    assert st_["drifting_probes"] == 0 and st_["replans"] == 0


# ----------------------------------------------------------------------
# (b) adversarial noise → re-plans bounded by the hysteresis arithmetic
# ----------------------------------------------------------------------
@given(
    config=_configs(),
    ratios=st.lists(
        st.one_of(
            st.floats(min_value=1e-6, max_value=1e6, allow_nan=False),
            st.just(1.0),
        ),
        min_size=1,
        max_size=120,
    ),
)
@settings(max_examples=80, deadline=None)
def test_hysteresis_bounds_replans_under_adversarial_sequences(config, ratios):
    mon = DriftMonitor(config)
    replans = 0
    for r in ratios:
        if mon.observe("k", predicted=100.0, executed=100.0 * r):
            mon.notify_replanned("k")
            replans += 1
    n = len(ratios)
    # Each re-plan needs `patience` fresh consecutive drifting probes and
    # swallows `cooldown` probes afterwards; the cap always binds.
    bound = min(config.max_replans, (n + config.cooldown) // (config.patience + config.cooldown))
    assert replans <= bound
    assert replans == mon.state("k")["replans"]


# ----------------------------------------------------------------------
# (c) cost-aware eviction keeps the expensive-to-replan entries
# ----------------------------------------------------------------------
@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_cost_aware_eviction_never_evicts_priciest_while_cheaper_exists(data):
    capacity = data.draw(st.integers(1, 6), label="capacity")
    n = data.draw(st.integers(capacity + 1, 20), label="inserts")
    costs = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=n,
            max_size=n,
            unique=True,
        ),
        label="costs",
    )
    cache = PlanCache(capacity=capacity)
    for i, cost in enumerate(costs):
        cache.put(f"k{i}", _plan(cost))
        # Interleave recency touches: recency must never override cost.
        if i % 2 and f"k{i - 1}" in cache:
            cache.get(f"k{i - 1}")
    # Each insert evicts the cheapest *resident* (the newcomer is
    # admitted unconditionally — rejecting inserts would no-op put()),
    # so with all-distinct costs the survivors are exactly the last
    # insert plus the `capacity - 1` most expensive of the rest: the
    # priciest resident is never evicted while a cheaper one exists.
    rest = sorted((i for i in range(n - 1)), key=lambda i: costs[i])
    expect = {f"k{n - 1}"} | {f"k{i}" for i in rest[len(rest) - (capacity - 1):]}
    assert {k for k in (f"k{i}" for i in range(n)) if k in cache} == expect
    assert cache.evictions == n - capacity
