"""Ablation bench: the paper's clustering hyperparameters.

The paper fixes ``jacc_th = 0.3`` and ``max_cluster_th = 8`` (§3.2)
without a sensitivity study.  This bench sweeps both knobs for
hierarchical clustering over a mixed trio of matrices and reports the
geomean speedup surface, asserting that the paper's operating point is
on the high plateau (i.e. their choice is defensible, not magical):

* very high thresholds (0.7+) barely cluster anything → speedup → 1,
* very low thresholds force dissimilar merges → padding erodes gains,
* tiny cluster caps (2) leave reuse on the table.
"""

import numpy as np

from repro.analysis import geomean
from repro.clustering import hierarchical_clustering
from repro.machine import SimulatedMachine
from repro.matrices import get_matrix

from _common import save_result

MATRICES = ["pdb1", "poi3D", "M6"]
JACC = [0.1, 0.2, 0.3, 0.5, 0.7]
CAPS = [2, 4, 8, 16]


def test_ablation_clustering_params(benchmark):
    machine = SimulatedMachine(n_threads=8, cache_lines=512)
    mats = {n: get_matrix(n) for n in MATRICES}
    base = {n: machine.run_rowwise(A, A).time for n, A in mats.items()}

    surface = np.zeros((len(CAPS), len(JACC)))
    for i, cap in enumerate(CAPS):
        for j, th in enumerate(JACC):
            sps = []
            for n, A in mats.items():
                hc = hierarchical_clustering(A, jacc_th=th, max_cluster_th=cap)
                t = machine.run_clusterwise(hc.to_csr_cluster(A), A).time
                sps.append(base[n] / t)
            surface[i, j] = geomean(sps)

    out = [f"Ablation: hierarchical clustering geomean speedup over {MATRICES}"]
    out.append(f"{'max_cluster':<12}" + "".join(f"{'jacc=' + str(t):>10}" for t in JACC))
    for i, cap in enumerate(CAPS):
        out.append(f"{cap:<12}" + "".join(f"{surface[i, j]:>10.2f}" for j in range(len(JACC))))
    save_result("ablation_params.txt", "\n".join(out))

    paper_point = surface[CAPS.index(8), JACC.index(0.3)]
    # The paper's (0.3, 8) sits on the plateau: within 10% of the best
    # configuration in the sweep, and clearly above the degenerate ones.
    assert paper_point > 1.0
    assert paper_point >= surface.max() * 0.9
    assert paper_point > surface[CAPS.index(2), JACC.index(0.7)]

    A = mats["pdb1"]
    benchmark.pedantic(
        hierarchical_clustering, args=(A,), kwargs={"jacc_th": 0.3, "max_cluster_th": 8}, rounds=3, iterations=1
    )
