"""Backend bench — per-backend wall-clock speedup vs ``reference``.

Seeds the bench trajectory for the execution-backend axis (ISSUE 3):
each generator-suite matrix is prepared once per kernel dataflow
(row-wise on plain CSR, cluster-wise on ``CSR_Cluster``) and then
executed through every registered backend that supports the kernel.
Only the *execution* is timed — preparation is the amortised one-off the
engine already accounts for — so the numbers isolate exactly what the
backend axis changes.

Emits ``BENCH_backends.json`` at the repository root, wrapped in the
schema-versioned envelope of ``benchmarks/_common.py`` (results payload
under ``"results"``, gated geomean speedups under ``"gate"``)::

    {
      "schema": 1, "bench": "backends", "git_rev": .., "config": {..},
      "gate": [{"metric": "summary.rowwise@scipy", ..}, ..],
      "results": {
        "matrices": {"web1200": {"rowwise": {"scipy": {"seconds": ..,
                                                       "speedup_vs_reference": ..}, ...}}},
        "summary":  {"rowwise@scipy": <geomean speedup>, ...},
      }
    }

Run directly (``python benchmarks/bench_backends.py``) or via pytest.
The pytest entry point asserts the ISSUE acceptance bar: ``scipy`` or
``vectorized`` at least 2× faster than ``reference`` on at least one
generator-suite matrix.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.backends import get_backend, parse_backend, time_execution
from repro.matrices import generators as G
from repro.pipeline import PipelineSpec, available_components

from _common import gate_metric, save_bench_json

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backends.json"

#: Sharded runs with a small fixed pool so results are comparable across
#: machines (and with the CI smoke matrix).
SHARDED = "sharded:workers=2"

#: Generator-suite matrices (moderate sizes: the reference backend is
#: pure python and is timed too).
MATRICES = {
    "web1000": lambda: G.web_graph(1000, seed=0),
    "grid32": lambda: G.grid2d(32, 32, seed=0),
    "banded900": lambda: G.banded_random(900, bandwidth=10, fill=0.4, seed=0),
    "blocks60x12": lambda: G.block_diagonal(60, 12, density=0.4, seed=0),
}

#: (kernel label, pipeline to prepare, backends to time).
CASES = [
    ("rowwise", "original+none+rowwise", ["reference", "scipy", SHARDED]),
    ("cluster", "original+fixed:8+cluster", ["reference", "scipy", "vectorized", SHARDED]),
]


def _time_execute(built, B, backend_ref: str, reps: int = 5) -> float:
    """Best-of-``reps`` wall-clock seconds for one backend execution
    (the shared :func:`repro.backends.time_execution` primitive).
    Best-of-5: the sharded cells compare near-identical code paths
    (width-1 passthrough *is* the inner backend), so the floor must be
    tight enough that scheduler noise does not masquerade as overhead."""
    return time_execution(built, B, backend_ref, reps=reps)


def run_bench() -> dict:
    registered = set(available_components("backend"))
    results: dict = {"matrices": {}, "summary": {}}
    per_case: dict[str, list[float]] = {}
    for mat_name, build_matrix in MATRICES.items():
        A = build_matrix()
        results["matrices"][mat_name] = {}
        for kernel_label, spec_text, backend_refs in CASES:
            built = PipelineSpec.parse(spec_text).build(A)
            cell: dict = {}
            t_ref = None
            for backend_ref in backend_refs:
                base_name = backend_ref.split(":", 1)[0]
                if base_name not in registered:
                    continue  # e.g. scipy-less environment
                seconds = _time_execute(built, A, backend_ref)
                if base_name == "reference":
                    t_ref = seconds
                speedup = (t_ref / seconds) if t_ref else float("nan")
                cell[backend_ref] = {
                    "seconds": round(seconds, 6),
                    "speedup_vs_reference": round(speedup, 3),
                    "bitwise": get_backend(*parse_backend(backend_ref)).bitwise_reference,
                }
                per_case.setdefault(f"{kernel_label}@{backend_ref}", []).append(speedup)
            results["matrices"][mat_name][kernel_label] = cell
    for case, speedups in per_case.items():
        vals = [s for s in speedups if s > 0 and not math.isnan(s)]
        gm = math.exp(sum(math.log(s) for s in vals) / len(vals)) if vals else float("nan")
        results["summary"][case] = round(gm, 3)
    return results


def save_bench() -> dict:
    results = run_bench()
    gates = [
        gate_metric(f"summary.{case}", gm, "higher")
        for case, gm in sorted(results["summary"].items())
        if not case.endswith("@reference")  # the 1.0 anchor gates nothing
    ]
    save_bench_json(
        OUT_PATH,
        "backends",
        results,
        gate=gates,
        config={"matrices": sorted(MATRICES), "sharded": SHARDED, "reps": 5},
    )
    return results


def test_backend_bench_meets_acceptance_bar():
    """ISSUE 3 acceptance: scipy or vectorized ≥ 2× the reference on at
    least one generator-suite matrix (and the JSON artefact is emitted)."""
    results = save_bench()
    best = 0.0
    for mat_cells in results["matrices"].values():
        for cells in mat_cells.values():
            for backend_ref, cell in cells.items():
                if backend_ref.split(":", 1)[0] in ("scipy", "vectorized"):
                    best = max(best, cell["speedup_vs_reference"])
    assert best >= 2.0, f"fast backends peaked at {best:.2f}x vs reference"
    assert OUT_PATH.exists()
    # ISSUE 9 acceptance: with the shm data plane (and the width-1
    # topology passthrough on narrow hosts) ``sharded`` no longer loses
    # to its inner backend at bench sizes.  The inner is ``reference``,
    # so the geomean-vs-reference *is* the geomean-vs-inner; the floor
    # leaves a noise margin below the ≥ 1.0 committed artefact numbers.
    for case, gm in results["summary"].items():
        if "@sharded" in case:
            assert gm >= 0.9, f"sharded geomean vs inner fell to {gm:.3f} on {case}"


if __name__ == "__main__":
    res = save_bench()
    print(json.dumps(res["summary"], indent=2, sort_keys=True))
    print(f"wrote {OUT_PATH}")
