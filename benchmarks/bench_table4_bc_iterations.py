"""Paper Table 4 — hierarchical cluster-wise SpGEMM per BC frontier
iteration (i1..i10) on the tall-skinny datasets, relative to row-wise.

Expected shape (paper): clustering A once pays off across the frontier
sequence; mesh/road datasets (AS365, GAP-road, M6, europe_osm) sustain
speedups across all 10 iterations, while power-law datasets hover
around 1.
"""

import numpy as np

from repro.analysis import render_matrix_table
from repro.clustering import hierarchical_clustering
from repro.core import cluster_spgemm
from repro.experiments import ExperimentConfig, cached_tallskinny_sweep
from repro.matrices import TALLSKINNY, get_matrix
from repro.workloads import bc_frontiers

from _common import save_result

DEPTH = 10


def test_table4_hierarchical_bc_iterations(benchmark):
    cfg = ExperimentConfig()
    grid = np.full((len(TALLSKINNY), DEPTH), np.nan)
    for i, name in enumerate(TALLSKINNY):
        res = cached_tallskinny_sweep(name, cfg)
        vals = res.hierarchical_speedup[:DEPTH]
        grid[i, : len(vals)] = vals
    text = render_matrix_table(
        "Table 4: hierarchical cluster-wise speedup per BC frontier iteration (vs row-wise)",
        TALLSKINNY,
        [f"i{k}" for k in range(1, DEPTH + 1)],
        grid,
        mean_col=True,
    )
    save_result("table4_bc_iterations.txt", text)

    # Paper shape: the structured datasets sustain mean speedup > 1.
    means = {TALLSKINNY[i]: float(np.nanmean(grid[i])) for i in range(len(TALLSKINNY))}
    winners = [d for d in ("AS365", "M6", "GAP-road", "europe_osm") if means[d] > 1.0]
    assert len(winners) >= 3, means

    # Wall-clock: one cluster-wise frontier multiplication.
    A = get_matrix("AS365")
    Ac = hierarchical_clustering(A).to_csr_cluster(A)
    F = bc_frontiers(A, batch=16, depth=1).frontiers[0]
    benchmark(cluster_spgemm, Ac, F)
