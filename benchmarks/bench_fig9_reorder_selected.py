"""Paper Fig. 9 — AMD/RCM/GP/HP row-wise speedup on the 10
representative datasets, relative to the original order.

Expected shape (paper): limited or no improvement on the first six
(well-ordered) datasets; large speedups (up to ~11×) on the mesh
datasets whose natural order is poor (AS365, huget, M6, NLR).
"""

import numpy as np

from repro.analysis import render_dataset_bars
from repro.experiments import ExperimentConfig, cached_matrix_sweep
from repro.matrices import REPRESENTATIVE, get_matrix
from repro.reordering import reorder

from _common import save_result

ALGOS = ["amd", "rcm", "gp", "hp"]
SCRAMBLED_MESHES = ["AS365", "huget", "M6", "NLR"]


def test_fig9_reordering_on_representative(benchmark):
    cfg = ExperimentConfig()
    series = {a: [] for a in ALGOS}
    for name in REPRESENTATIVE:
        s = cached_matrix_sweep(name, cfg)
        for a in ALGOS:
            series[a].append(s.speedup("rowwise", a))
    text = render_dataset_bars(
        "Figure 9: row-wise SpGEMM speedup of AMD/RCM/GP/HP (vs original order)",
        REPRESENTATIVE,
        series,
    )
    save_result("fig9_reorder_selected.txt", text)

    # Paper shape: the scrambled meshes see large RCM/GP/HP speedups…
    for mesh in SCRAMBLED_MESHES:
        i = REPRESENTATIVE.index(mesh)
        assert max(series[a][i] for a in ("rcm", "gp", "hp")) > 1.5, mesh
    # …while well-ordered datasets see little (geomean of first six ≈ 1).
    first_six = REPRESENTATIVE[:6]
    vals = [series[a][REPRESENTATIVE.index(d)] for d in first_six for a in ALGOS]
    assert np.exp(np.mean(np.log(vals))) < 1.5

    # Wall-clock: the GP reordering itself.
    A = get_matrix("M6")
    benchmark.pedantic(reorder, args=(A, "gp"), kwargs={"seed": 0}, rounds=2, iterations=1)
