"""Paper Fig. 10 — performance profile of reordering overhead.

For every algorithm, over the problems it *improves*: the fraction
amortising its preprocessing within x SpGEMM runs (x ≤ 20).  HP is
excluded, exactly as in the paper ("excludes HP due to its significantly
higher overhead").

Expected shape (paper): cheap orderings (Shuffled/Rabbit/Degree)
amortise within ~5 runs; RCM/GP need ≥20 runs on about half their wins;
hierarchical clustering amortises within 20 runs on ~90% of its wins.
"""

from repro.analysis import amortization_profile, render_profile
from repro.matrices import get_matrix
from repro.reordering import reorder

from _common import REORDER_ORDER, save_result, shared_sweeps


def test_fig10_amortization_profile(benchmark):
    sweeps = shared_sweeps()
    profiles = {}
    algos = [a for a in REORDER_ORDER if a != "hp"]  # paper excludes HP here
    for a in algos:
        iters = [s.rowwise[a].amortization_iterations(s.baseline_time) for s in sweeps]
        profiles[a] = amortization_profile(iters, max_x=20.0)
    hier_iters = [
        s.hierarchical.amortization_iterations(s.baseline_time) for s in sweeps if s.hierarchical
    ]
    profiles["hierarchical"] = amortization_profile(hier_iters, max_x=20.0)

    text = render_profile(
        "Figure 10: fraction of improved problems amortising preprocessing within x SpGEMM runs",
        profiles,
        xs=[1, 2, 5, 10, 20],
    )
    save_result("fig10_amortization.txt", text)

    # Paper shape: hierarchical amortises within 20 runs for most wins;
    # cheap shuffles amortise almost immediately when they help at all.
    assert profiles["hierarchical"].fraction_at(20.0) > 0.6
    if profiles["shuffled"].n_problems:
        assert profiles["shuffled"].fraction_at(5.0) > 0.5
    # GP is slower to amortise than hierarchical clustering.
    assert profiles["gp"].fraction_at(5.0) <= profiles["hierarchical"].fraction_at(5.0) + 0.25

    # Wall-clock: RCM (the classic cheap-but-effective reordering).
    A = get_matrix("M6")
    benchmark.pedantic(reorder, args=(A, "rcm"), rounds=3, iterations=1)
