"""Paper Fig. 8 — the three cluster-wise methods on 10 representative
datasets (cage12, poi3D, conf5, pdb1, rma10, wb, AS365, huget, M6, NLR),
relative to row-wise SpGEMM on the original order.

Expected shape (paper): hierarchical improves all 10 (up to 1.70×);
fixed/variable help on the well-structured half (pdb1, rma10, conf5)
and sit near/below 1 elsewhere.
"""

from repro.analysis import render_dataset_bars
from repro.clustering import hierarchical_clustering
from repro.experiments import ExperimentConfig, cached_matrix_sweep
from repro.matrices import REPRESENTATIVE, get_matrix

from _common import save_result


def test_fig8_clustering_on_representative(benchmark):
    cfg = ExperimentConfig()
    series = {"fixed": [], "variable": [], "hierarchical": []}
    for name in REPRESENTATIVE:
        s = cached_matrix_sweep(name, cfg)
        series["fixed"].append(s.speedup("fixed", "original"))
        series["variable"].append(s.speedup("variable", "original"))
        series["hierarchical"].append(s.baseline_time / s.hierarchical.time)
    text = render_dataset_bars(
        "Figure 8: cluster-wise SpGEMM speedup on representative datasets (vs row-wise original)",
        REPRESENTATIVE,
        series,
    )
    save_result("fig8_representative.txt", text)

    # Paper shape: hierarchical is the most consistent winner.
    wins = sum(1 for v in series["hierarchical"] if v > 1.0)
    assert wins >= 7, series["hierarchical"]
    # pdb1 (dense blocks) benefits from all three methods.
    i_pdb1 = REPRESENTATIVE.index("pdb1")
    assert series["fixed"][i_pdb1] > 1.0 and series["variable"][i_pdb1] > 1.0

    # Wall-clock: hierarchical clustering construction (paper Alg. 3).
    A = get_matrix("pdb1")
    benchmark(hierarchical_clustering, A)
