"""Ablation bench (beyond the paper): cost-model and cache sensitivity.

DESIGN.md commits to ablating the machine-model choices.  This bench
sweeps (a) the per-thread cache capacity and (b) the memory-boundedness
weight ``beta``, and verifies the reproduction's headline conclusions
are *stable* across the model space — i.e. they are driven by the access
patterns, not by a lucky calibration:

* hierarchical cluster-wise beats row-wise on a scrambled block matrix
  at every cache size,
* shuffling never helps at any beta,
* cluster-wise B-row opens are always fewer than row-wise opens.
"""

import numpy as np

from repro.clustering import hierarchical_clustering
from repro.machine import CostModel, LRUCache, SimulatedMachine
from repro.matrices import generators as G, scramble

from _common import save_result


def test_ablation_cache_and_beta(benchmark):
    A = scramble(G.block_diagonal(24, 16, density=0.5, coupling=0.01, seed=3), seed=7)
    hc = hierarchical_clustering(A)
    Ac = hc.to_csr_cluster(A)

    lines = [128, 256, 512, 1024, 2048]
    betas = [1.0, 4.0, 16.0]
    rows = ["cache_lines=" + str(c) for c in lines]
    out = ["Ablation: hierarchical cluster-wise speedup vs row-wise (scrambled block matrix)"]
    out.append(f"{'config':<18}" + "".join(f"{'beta=' + str(b):>10}" for b in betas))
    stable = True
    for cl in lines:
        vals = []
        for beta in betas:
            m = SimulatedMachine(n_threads=4, cache_lines=cl, cost_model=CostModel(beta_miss_byte=beta))
            base = m.run_rowwise(A, A)
            clus = m.run_clusterwise(Ac, A)
            sp = base.time / clus.time
            vals.append(sp)
            stable &= sp > 1.0
            assert clus.cost.b_row_visits < base.cost.b_row_visits
        out.append(f"{'cache_lines=' + str(cl):<18}" + "".join(f"{v:>10.2f}" for v in vals))
    save_result("ablation_costmodel.txt", "\n".join(out))
    assert stable, "hierarchical win must be robust across the model space"

    # Shuffling never helps regardless of beta.
    rng = np.random.default_rng(0)
    Ashuf = A.permute_symmetric(rng.permutation(A.nrows))
    for beta in betas:
        m = SimulatedMachine(n_threads=4, cache_lines=512, cost_model=CostModel(beta_miss_byte=beta))
        assert m.run_rowwise(Ashuf, Ashuf).time >= m.run_rowwise(A, A).time * 0.95

    # Wall-clock: the LRU simulator itself (the substrate's hot loop).
    trace = np.random.default_rng(1).integers(0, 4096, size=200_000)
    benchmark(lambda: LRUCache(512).run(trace))
