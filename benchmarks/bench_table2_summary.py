"""Paper Table 2 — SpGEMM speedup through reordering across variants.

For every reordering × {row-wise, fixed-cluster, variable-cluster}:
GM / Pos.% / +GM over the suite, plus the Best-Reordering row (per-matrix
maximum).

Expected shape (paper): HP the best row-wise GM (1.77), then GP (1.50)
and RCM (1.44); Shuffled ≈ 0.43; the Best-Reordering row far above any
single algorithm (2.90 row-wise) with ≥90% positive.
"""

from repro.analysis import best_of, render_table2, summarize_speedups
from repro.core import spgemm_topk_similarity
from repro.matrices import get_matrix

from _common import REORDER_ORDER, save_result, shared_sweeps, speedups_by_algo


def test_table2_reordering_summary(benchmark):
    sweeps = shared_sweeps()
    rows: dict[str, dict[str, list[float]]] = {}
    for algo in REORDER_ORDER:
        rows[algo.capitalize()] = {
            "rowwise": [s.speedup("rowwise", algo) for s in sweeps],
            "fixed": [s.speedup("fixed", algo) for s in sweeps],
            "variable": [s.speedup("variable", algo) for s in sweeps],
        }
    rows["Best Reord."] = {
        v: best_of(speedups_by_algo(sweeps, v)) for v in ("rowwise", "fixed", "variable")
    }
    text = render_table2(rows)
    save_result("table2_summary.txt", text)

    # Paper-shape checks on the row-wise column.
    gm = {a: summarize_speedups(rows[a.capitalize()]["rowwise"]).gm for a in REORDER_ORDER}
    assert gm["shuffled"] < 0.9
    assert max(gm, key=gm.get) in ("hp", "gp", "rcm")
    best = summarize_speedups(rows["Best Reord."]["rowwise"])
    assert best.gm >= max(gm.values())
    assert best.pos_pct > 0.7

    # Wall-clock: the A·Aᵀ top-K similarity SpGEMM.
    A = get_matrix("pdb1")
    benchmark(spgemm_topk_similarity, A)
