"""Ablation bench (paper §5 extension): the three SpGEMM dataflows.

Compares, on the simulated machine, the B-side cache behaviour of
row-wise Gustavson, column-tiled (the paper's proposed future scheme),
and cluster-wise (the paper's contribution) across matrices with very
different structure.  The expectation, which this bench asserts:

* tiling shrinks the B working set on *any* structure (misses drop even
  on unstructured matrices, where clustering cannot help),
* clustering wins where row similarity exists (block matrices) because
  it reduces both misses *and* B-row opens, which tiling multiplies.
"""

import numpy as np

from repro.clustering import hierarchical_clustering
from repro.core import spgemm_rowwise, tiled_spgemm
from repro.core.tiled_spgemm import tiled_b_trace
from repro.machine import SimulatedMachine, simulate_lru
from repro.machine.layout import BLayout
from repro.machine.trace import rowwise_b_trace
from repro.matrices import generators as G, scramble

from _common import save_result


def test_ablation_dataflows(benchmark):
    cases = {
        "er (unstructured)": G.erdos_renyi(1500, avg_degree=12, seed=1),
        "blockdiag (scr.)": scramble(G.block_diagonal(24, 16, density=0.5, seed=2), seed=3),
        "banded": G.banded_random(1500, bandwidth=16, seed=4),
    }
    cap = 256
    out = ["Ablation: B-trace misses per dataflow (LRU cap 256 lines)"]
    out.append(f"{'matrix':<20} {'row-wise':>10} {'tiled':>10} {'cluster':>10}")
    for name, A in cases.items():
        full = simulate_lru(rowwise_b_trace(A, BLayout.of(A)), cap).misses
        tiled = simulate_lru(tiled_b_trace(A, A, tile_cols=96), cap).misses
        hc = hierarchical_clustering(A)
        m = SimulatedMachine(n_threads=1, cache_lines=cap)
        clus = m.run_clusterwise(hc.to_csr_cluster(A), A).cost.cache.misses
        out.append(f"{name:<20} {full:>10} {tiled:>10} {clus:>10}")
        # Tiling never meaningfully hurts the B side (at worst it adds a
        # tile-boundary line per tile on compulsory-only traffic)…
        assert tiled <= full * 1.02 + 64
        if "er" in name:
            # …and it crushes capacity misses on unstructured matrices,
            # where clustering has no similarity to exploit.
            assert tiled < full / 2
        if "blockdiag" in name:
            assert clus < full  # clustering wins where similarity exists
    save_result("ablation_dataflow.txt", "\n".join(out))

    # Numeric agreement of the tiled kernel on a representative case.
    A = cases["banded"]
    assert tiled_spgemm(A, A, tile_cols=128).allclose(spgemm_rowwise(A, A))

    benchmark.pedantic(tiled_spgemm, args=(A, A), kwargs={"tile_cols": 256}, rounds=2, iterations=1)
