"""Trace-replay bench: a seeded synthetic request stream through the engine.

The observability acceptance bench (DESIGN.md §12): synthesise a
500-request trace (Zipf popularity over a small matrix population,
bursty arrivals, occasional pattern churn) and replay it through an
adaptive autotuning engine.  Everything the report contains — latency
percentiles in *model cost units*, plan-cache hit rate, re-plan count,
calibration staleness — is deterministic, so the emitted
``BENCH_trace_replay.json`` is byte-for-byte reproducible from the seed
and its gated metrics are meaningful across machines.

Emits ``BENCH_trace_replay.json`` at the repository root (schema-
versioned envelope, see ``benchmarks/_common.py``)::

    {
      "schema": 1, "bench": "trace_replay", "git_rev": .., "config": {..},
      "gate": [{"metric": "report.hit_rate", "value": .., "direction": "higher"}, ..],
      "results": {"spec": {..}, "report": {..}, "determinism": {..}}
    }

Run directly (``python benchmarks/bench_trace_replay.py``) or via
pytest.  The pytest entry point asserts the ISSUE acceptance bar: the
report carries p50/p95/p99 latency, hit rate, re-plan count and
calibration staleness, and a second replay from the same seed
reproduces both trace and report byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path

from repro.engine import SpGEMMEngine
from repro.workloads import TraceSpec, replay, synthesize_trace

from _common import gate_metric, save_bench_json

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace_replay.json"

#: The canonical acceptance trace: 500 requests, seed 0.
SPEC = TraceSpec(requests=500, seed=0)

#: Engine configuration under test — autotuning with drift detection
#: armed, the full adaptive surface the trace exercises.
ENGINE_KW = dict(policy="autotune", drift_threshold=1.3)


def _engine() -> SpGEMMEngine:
    return SpGEMMEngine(ENGINE_KW["policy"], drift_threshold=ENGINE_KW["drift_threshold"])


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def run_bench() -> dict:
    trace = synthesize_trace(SPEC)
    trace_jsonl = trace.to_jsonl()
    report = replay(trace, _engine())
    report_json = json.dumps(report.to_dict(), sort_keys=True)

    # Second pass from the same seed through a fresh engine: the
    # determinism contract the gate (and the pytest entry) checks.
    trace2 = synthesize_trace(SPEC)
    report2 = replay(trace2, _engine())
    report2_json = json.dumps(report2.to_dict(), sort_keys=True)

    return {
        "spec": asdict(SPEC),
        "report": report.to_dict(),
        "wall_seconds_uncommitted": round(report.wall_seconds, 3),
        "determinism": {
            "trace_sha256": _sha256(trace_jsonl),
            "report_sha256": _sha256(report_json),
            "trace_reproduced": trace2.to_jsonl() == trace_jsonl,
            "report_reproduced": report2_json == report_json,
        },
    }


def _gates(results: dict) -> list[dict]:
    rep = results["report"]
    return [
        gate_metric("report.hit_rate", rep["hit_rate"], "higher"),
        gate_metric("report.latency_model_units.p95", rep["latency_model_units"]["p95"], "lower"),
        gate_metric("report.model_speedup", rep["model_speedup"], "higher"),
    ]


def save_bench() -> dict:
    results = run_bench()
    # Wall clock is machine noise — keep it out of the committed file so
    # reruns of this deterministic bench are byte-identical.
    committed = {k: v for k, v in results.items() if k != "wall_seconds_uncommitted"}
    save_bench_json(
        OUT_PATH,
        "trace_replay",
        committed,
        gate=_gates(results),
        config={"engine": ENGINE_KW, "spec": asdict(SPEC)},
    )
    return results


def test_trace_replay_meets_acceptance_bar():
    """ISSUE 6 acceptance: a seeded 500-request replay produces the full
    structured report, byte-reproducible from the same seed."""
    results = save_bench()
    rep = results["report"]
    assert rep["requests"] >= 500
    for pct in ("p50", "p95", "p99"):
        assert pct in rep["latency_model_units"]
    for key in ("hit_rate", "replans", "calibration_staleness", "plans_built", "drift_probes"):
        assert key in rep
    assert 0.0 <= rep["hit_rate"] <= 1.0
    det = results["determinism"]
    assert det["trace_reproduced"], "same seed must give a byte-identical trace"
    assert det["report_reproduced"], "same seed must give a byte-identical report"
    assert OUT_PATH.exists()


if __name__ == "__main__":
    res = save_bench()
    print(json.dumps(res["report"], indent=2, sort_keys=True))
    print(f"determinism: {res['determinism']}")
    print(f"wall: {res['wall_seconds_uncommitted']}s")
    print(f"wrote {OUT_PATH}")
