"""Paper Table 3 — row-wise SpGEMM speedup after reordering on
tall-skinny (BC frontier) workloads, 10 datasets × 10 reorderings +
Best-Reorder column.

Expected shape (paper): reordering gains transfer from A² to tall-skinny
(the overlap of green/bold cells); road/mesh datasets gain most from
RCM/ND/GP/HP; shuffled hurts badly on meshes and roads.
"""

import numpy as np

from repro.analysis import render_matrix_table
from repro.experiments import ExperimentConfig, cached_tallskinny_sweep
from repro.matrices import TALLSKINNY, get_matrix
from repro.workloads import bc_frontiers

from _common import REORDER_ORDER, save_result


def test_table3_tallskinny_reordering(benchmark):
    cfg = ExperimentConfig()
    grid = np.zeros((len(TALLSKINNY), len(REORDER_ORDER) + 1))
    for i, name in enumerate(TALLSKINNY):
        res = cached_tallskinny_sweep(name, cfg)
        vals = [res.rowwise_speedup.get(a, float("nan")) for a in REORDER_ORDER]
        grid[i, :-1] = vals
        grid[i, -1] = np.nanmax(vals)
    text = render_matrix_table(
        "Table 3: tall-skinny row-wise SpGEMM speedup after reordering (vs original order)",
        TALLSKINNY,
        REORDER_ORDER + ["Best"],
        grid,
    )
    save_result("table3_tallskinny.txt", text)

    # Paper shape: the scrambled mesh/road datasets have a winning
    # structured reordering (paper: up to 4.5×; our scale: >1.2×).
    mesh_rows = [TALLSKINNY.index(d) for d in ("AS365", "M6", "NLR", "GAP-road")]
    for i in mesh_rows:
        assert grid[i, -1] > 1.2, TALLSKINNY[i]
    # Shuffled never beats the best structured reordering there.
    i_shuf = REORDER_ORDER.index("shuffled")
    assert np.nanmean(grid[mesh_rows, i_shuf]) < np.nanmean(grid[mesh_rows, -1])

    # Wall-clock: BC frontier generation (the workload builder).
    A = get_matrix("GAP-road")
    benchmark.pedantic(bc_frontiers, args=(A,), kwargs={"batch": 16, "depth": 10}, rounds=2, iterations=1)
