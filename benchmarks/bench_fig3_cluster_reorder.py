"""Paper Fig. 3 — cluster-wise SpGEMM with reordering.

Regenerates the fixed-length and variable-length cluster boxes under
every ordering (Original + 10 reorderings) plus the hierarchical
clustering box, all relative to row-wise SpGEMM on the original order.

Expected shape (paper): hierarchical has the best geomean (≈1.39, ~70%
positive); fixed/variable on the original order help on ~45%/40% of
inputs; HP/GP/RCM preprocessing lifts both cluster variants.
"""

import numpy as np

from repro.analysis import render_box_figure, summarize_speedups
from repro.clustering import fixed_length_clustering
from repro.core import cluster_spgemm
from repro.matrices import get_matrix

from _common import REORDER_ORDER, save_result, shared_sweeps, speedups_by_algo


def test_fig3_clusterwise_with_reordering(benchmark):
    sweeps = shared_sweeps()
    boxes = {}
    for variant in ("fixed", "variable"):
        per = speedups_by_algo(sweeps, variant, algos=["original"] + REORDER_ORDER)
        for algo, vals in per.items():
            boxes[f"{variant}/{algo}"] = summarize_speedups(vals)
    hier = [s.baseline_time / s.hierarchical.time if s.hierarchical else float("nan") for s in sweeps]
    boxes["hierarchical"] = summarize_speedups(hier)
    text = render_box_figure(
        "Figure 3: cluster-wise SpGEMM (+reordering) speedup vs row-wise original order", boxes
    )
    save_result("fig3_cluster_reorder.txt", text)

    # Paper-shape checks.
    assert boxes["hierarchical"].gm > 1.0
    assert boxes["hierarchical"].pos_pct > 0.5
    # Reordering with HP lifts variable clustering well above its
    # original-order geomean (paper §4.3).
    assert boxes["variable/hp"].gm > boxes["variable/original"].gm
    # Shuffling before clustering is disastrous, as in the paper.
    assert boxes["fixed/shuffled"].gm < boxes["fixed/original"].gm

    # Wall-clock: the cluster-wise kernel (paper Alg. 1).
    A = get_matrix("pdb1")
    Ac = fixed_length_clustering(A, cluster_size=8).to_csr_cluster(A)
    benchmark(cluster_spgemm, Ac, A)
