"""Adaptive-runtime bench — calibrated vs static backend ranking.

Seeds the bench trajectory for the adaptive runtime (ISSUE 4) with two
measurements:

1. **Plan quality** — two ``backend="auto"`` autotune engines plan the
   same suite matrices, one ranking backends with the static
   ``model_speed_factor`` hints, the other with a fresh
   :class:`~repro.engine.BackendCalibrator` measurement.  After
   planning, each engine's steady-state multiply is wall-clock timed
   (interleaved median-of-``REPS`` samples, so machine drift cannot
   bias one engine's block); identical chosen plans score exactly 1.0 —
   re-timing the same configuration would launder timer noise into a
   "speedup".  On this roster both rankings land on ``scipy`` for every
   stable cell, so the geomean shows calibrated-auto ≥ static-auto by
   matching it.  (Knife-edge matrices where tiny per-kernel factor
   noise flips the *dataflow* choice — e.g. ``blockdiag_scr_0`` — are
   deliberately excluded: their sign flips within measurement noise and
   would report model-transfer noise, not ranking quality.)
2. **Factor fidelity** — what calibration decisively improves: for each
   (backend, kernel) pair the *measured* wall-clock ratio vs
   ``reference`` on a held-out suite matrix is compared against the
   static hint and against the calibrated bin factor, as
   ``|log(factor / actual)|`` error.  The static hints are off by an
   order of magnitude (scipy hint 0.35 vs real ≈ 0.02 — see
   ``BENCH_backends.json``); the calibrated factors are not.

Emits ``BENCH_adaptive.json`` at the repository root, wrapped in the
schema-versioned envelope of ``benchmarks/_common.py`` (payload below
under ``"results"``, gated summary metrics under ``"gate"``)::

    {
      "matrices": {"wb": {"static":     {"plan": .., "seconds": ..},
                          "calibrated": {"plan": .., "seconds": ..},
                          "speedup_calibrated_vs_static": ..}, ...},
      "fidelity": {"rowwise@scipy": {"actual": .., "static_hint": ..,
                                     "calibrated": .., ..}, ...},
      "summary":  {"geomean_speedup_calibrated_vs_static": ..,
                   "mean_abs_log_error_static": ..,
                   "mean_abs_log_error_calibrated": ..},
      "calibration": {"epoch": .., "entries": ..},
    }

Run directly (``python benchmarks/bench_adaptive.py``) or via pytest.
The pytest entry point asserts the ISSUE acceptance bar: the calibrated
engine's geomean is at least the static engine's (small wall-clock
noise tolerance in the assertion; the JSON records the real ratio), and
calibrated factors beat the static hints on fidelity.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.backends import backend_supports, time_execution
from repro.engine import BackendCalibrator, SpGEMMEngine
from repro.experiments import ExperimentConfig
from repro.matrices import get_matrix
from repro.pipeline import PipelineSpec

from _common import gate_metric, save_bench_json

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_adaptive.json"

#: Suite matrices spanning the planner's regimes: well-ordered (keeps
#: the baseline), scrambled (reordering recovers), similarity-rich
#: (clustering wins) — moderate sizes, every chosen plan is timed live.
MATRICES = ["pdb1", "wb", "grid2d_scr_0", "trimesh_scr_1", "banded_1", "conf5"]

#: Held-out matrix for the factor-fidelity comparison (not in the
#: calibration set — calibration must *transfer* to score well).
FIDELITY_MATRIX = "wb"

REPS = 9
MULTIPLIES_PER_SAMPLE = 5  # small cells need batching to beat timer jitter


def _sample_once(eng: SpGEMMEngine, A) -> float:
    t0 = time.perf_counter()
    for _ in range(MULTIPLIES_PER_SAMPLE):
        eng.multiply(A)
    return (time.perf_counter() - t0) / MULTIPLIES_PER_SAMPLE


def _median(xs: list) -> float:
    xs = sorted(xs)
    return xs[len(xs) // 2]


def _steady_state_pair(a: SpGEMMEngine, b: SpGEMMEngine, A) -> tuple[float, float]:
    """Median-of-``REPS`` steady-state seconds for two engines, sampled
    *interleaved* so slow machine drift (thermal, frequency scaling)
    cannot bias one engine's timing block against the other's.
    Planning + preparation are paid before timing starts."""
    a.multiply(A)
    b.multiply(A)
    ta, tb = [], []
    for _ in range(REPS):
        ta.append(_sample_once(a, A))
        tb.append(_sample_once(b, A))
    return _median(ta), _median(tb)


def _fidelity(table) -> dict:
    """Per (backend, kernel): measured wall ratio vs the static hint and
    the calibrated bin factor, on the held-out matrix."""
    from repro.pipeline import components, get_component

    A = get_matrix(FIDELITY_MATRIX)
    out: dict = {}
    for kernel, spec_text in BackendCalibrator.KERNEL_SPECS:
        built = PipelineSpec.parse(spec_text).build(A)
        t_ref = time_execution(built, A, "reference", reps=3)
        for info in components("backend", planned=True):
            if info.name == "reference" or not backend_supports(info.name, (), kernel):
                continue
            actual = time_execution(built, A, info.name, reps=3) / t_ref
            hint = get_component("backend", info.name).model_speed_factor
            cal = table.factor(
                info.name,
                kernel,
                n=A.nrows,
                nnz_row=A.nnz / A.nrows,
                density=A.nnz / (A.nrows * A.ncols),
            )
            out[f"{kernel}@{info.name}"] = {
                "actual": round(actual, 4),
                "static_hint": hint,
                "static_abs_log_error": round(abs(math.log(hint / actual)), 3),
                "calibrated": round(cal, 4) if cal else None,
                "calibrated_abs_log_error": round(abs(math.log(cal / actual)), 3) if cal else None,
            }
    return out


def run_bench() -> dict:
    table = BackendCalibrator(reps=REPS).calibrate()
    cfg = ExperimentConfig()
    results: dict = {
        "matrices": {},
        "fidelity": _fidelity(table),
        "summary": {},
        "calibration": {"epoch": table.epoch, "entries": len(table.entries)},
    }
    speedups = []
    for name in MATRICES:
        A = get_matrix(name)
        static = SpGEMMEngine(policy="autotune", config=cfg, backend="auto")
        calibrated = SpGEMMEngine(policy="autotune", config=cfg, backend="auto", calibration=table)
        plan_static = static.plan_for(A)
        plan_cal = calibrated.plan_for(A)
        if plan_cal.label == plan_static.label:
            t_static, _ = _steady_state_pair(static, calibrated, A)
            t_cal, speedup = t_static, 1.0
        else:
            t_static, t_cal = _steady_state_pair(static, calibrated, A)
            speedup = t_static / t_cal if t_cal > 0 else float("nan")
        speedups.append(speedup)
        results["matrices"][name] = {
            "static": {"plan": plan_static.label, "seconds": round(t_static, 6)},
            "calibrated": {"plan": plan_cal.label, "seconds": round(t_cal, 6)},
            "identical_plans": plan_cal.label == plan_static.label,
            "speedup_calibrated_vs_static": round(speedup, 3),
        }
    vals = [s for s in speedups if s > 0 and not math.isnan(s)]
    gm = math.exp(sum(math.log(s) for s in vals) / len(vals)) if vals else float("nan")
    results["summary"]["geomean_speedup_calibrated_vs_static"] = round(gm, 3)
    errors_static = [c["static_abs_log_error"] for c in results["fidelity"].values()]
    errors_cal = [
        c["calibrated_abs_log_error"]
        for c in results["fidelity"].values()
        if c["calibrated_abs_log_error"] is not None
    ]
    results["summary"]["mean_abs_log_error_static"] = round(sum(errors_static) / len(errors_static), 3)
    results["summary"]["mean_abs_log_error_calibrated"] = (
        round(sum(errors_cal) / len(errors_cal), 3) if errors_cal else None
    )
    return results


def save_bench() -> dict:
    results = run_bench()
    s = results["summary"]
    gates = [
        gate_metric(
            "summary.geomean_speedup_calibrated_vs_static",
            s["geomean_speedup_calibrated_vs_static"],
            "higher",
        ),
        gate_metric(
            "summary.mean_abs_log_error_calibrated", s["mean_abs_log_error_calibrated"], "lower"
        ),
    ]
    save_bench_json(
        OUT_PATH,
        "adaptive",
        results,
        gate=gates,
        config={"matrices": MATRICES, "fidelity_matrix": FIDELITY_MATRIX, "reps": REPS},
    )
    return results


def test_adaptive_bench_meets_acceptance_bar():
    """ISSUE 4 acceptance: calibrated-auto at least matches static-auto
    (geomean, 10% wall-clock noise floor in the assertion), and the
    measured factors are strictly more faithful than the static hints."""
    results = save_bench()
    gm = results["summary"]["geomean_speedup_calibrated_vs_static"]
    assert gm >= 0.9, f"calibrated-auto geomean fell to {gm:.2f}x of static-auto"
    err_s = results["summary"]["mean_abs_log_error_static"]
    err_c = results["summary"]["mean_abs_log_error_calibrated"]
    assert err_c is not None and err_c < err_s, (
        f"calibrated factors (err {err_c}) should beat static hints (err {err_s})"
    )
    assert results["calibration"]["entries"] > 0
    assert OUT_PATH.exists()


if __name__ == "__main__":
    res = save_bench()
    print(json.dumps(res["summary"], indent=2, sort_keys=True))
    for name, cell in res["matrices"].items():
        print(
            f"{name:16s} static {cell['static']['plan']:42s} {cell['static']['seconds'] * 1e3:8.2f}ms"
            f"  calibrated {cell['calibrated']['plan']:42s} {cell['calibrated']['seconds'] * 1e3:8.2f}ms"
            f"  ({cell['speedup_calibrated_vs_static']:.2f}x)"
        )
    print(f"wrote {OUT_PATH}")
