"""Paper Fig. 11 — memory overhead of cluster-wise SpGEMM.

CDF over the suite of ``CSR_Cluster bytes / CSR bytes`` for fixed,
variable and hierarchical clustering.

Expected shape (paper): variable-length is the most frugal, fixed-length
the heaviest (padding), hierarchical in between; a sizeable fraction of
problems sit *below* 1× because CSR_Cluster shares column indices across
a cluster's rows.
"""

import numpy as np

from repro.analysis import ratio_profile, render_profile
from repro.clustering import variable_length_clustering
from repro.core import CSRCluster
from repro.matrices import get_matrix

from _common import save_result, shared_sweeps


def test_fig11_memory_overhead(benchmark):
    sweeps = shared_sweeps()
    profiles = {}
    for method in ("fixed", "variable", "hierarchical"):
        ratios = [s.memory_ratio[method] for s in sweeps if method in s.memory_ratio]
        profiles[method] = ratio_profile(ratios, max_x=5.0)
    text = render_profile(
        "Figure 11: fraction of problems with cluster-format memory ≤ x× the CSR footprint",
        profiles,
        xs=[0.75, 1.0, 1.5, 2.0, 3.0, 5.0],
    )
    save_result("fig11_memory.txt", text)

    # Paper shape: variable ≤ hierarchical ≤ fixed at every budget.
    for x in (1.0, 1.5, 2.0):
        assert profiles["variable"].fraction_at(x) >= profiles["fixed"].fraction_at(x) - 1e-9
    # Most problems stay under 2× for variable-length (paper: >80%).
    assert profiles["variable"].fraction_at(2.0) > 0.8

    # Wall-clock: CSR_Cluster construction.
    A = get_matrix("pdb1")
    clusters = variable_length_clustering(A).clusters
    benchmark(CSRCluster.from_clusters, A, clusters)
