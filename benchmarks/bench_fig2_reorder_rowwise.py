"""Paper Fig. 2 — speedup of row-wise SpGEMM after reordering.

Regenerates the box-plot distributions (one per reordering algorithm +
hierarchical-as-reordering) of row-wise ``A²`` speedup relative to the
original matrix order, over the benchmark suite.

Expected shape (paper): HP/GP/RCM have the best geomeans (1.77/1.50/1.44
on the paper's machine); Shuffled is far below 1; Rabbit/AMD/SlashBurn
have GM < 1 but long positive tails.
"""

from repro.analysis import render_box_figure, summarize_speedups
from repro.core import spgemm_rowwise
from repro.matrices import get_matrix

from _common import REORDER_ORDER, save_result, shared_sweeps, speedups_by_algo


def test_fig2_reordering_rowwise(benchmark):
    sweeps = shared_sweeps()
    per_algo = speedups_by_algo(sweeps, "rowwise")
    per_algo["hierarchical"] = [
        s.baseline_time / s.hierarchical_rowwise.time if s.hierarchical_rowwise else float("nan") for s in sweeps
    ]
    boxes = {a: summarize_speedups(v) for a, v in per_algo.items()}
    text = render_box_figure(
        "Figure 2: row-wise SpGEMM speedup after reordering (vs original order)", boxes
    )
    save_result("fig2_reorder_rowwise.txt", text)

    # Paper-shape checks: shuffle clearly loses; the partitioners beat it;
    # HP/GP/RCM are the strongest geomeans of the classical algorithms.
    assert boxes["shuffled"].gm < 0.9
    strongest = max(REORDER_ORDER, key=lambda a: boxes[a].gm)
    assert strongest in ("hp", "gp", "rcm")
    assert boxes["hp"].gm > boxes["shuffled"].gm
    assert boxes["gp"].gm > 1.0

    # Wall-clock: the row-wise kernel the study is built on.
    A = get_matrix("pdb1")
    benchmark(spgemm_rowwise, A, A)
