"""Serving bench: coalesced vs sequential dispatch of one replay trace.

The serving acceptance bench (DESIGN.md §14): replay the same seeded
Zipf-popularity trace through two identically-configured servers — one
coalescing (batching window + ``max_batch=32``), one forced sequential
(``max_batch=1``, so every request pays its own plan resolution, operand
prep and drift probe) — and compare throughput.  Both modes run the
paused-server protocol (queue everything, then start the dispatcher), so
queueing overhead is identical and the measured difference is precisely
what coalescing buys.  Every product of both modes is checked bitwise
against plain sequential ``engine.multiply`` — ``result_mismatches``
gates at zero.

Emits ``BENCH_serve.json`` at the repository root (schema-versioned
envelope, see ``benchmarks/_common.py``)::

    {
      "schema": 1, "bench": "serve", "git_rev": .., "config": {..},
      "gate": [{"metric": "summary.throughput_ratio_coalesced_vs_sequential", ..}, ..],
      "results": {"coalesced": {..}, "sequential": {..}, "summary": {..}}
    }

Timing values vary run to run (wall clock); the coalesce ratio, batch
counts and mismatch count are deterministic from the seed.  Run directly
(``python benchmarks/bench_serve.py``) or via pytest — the pytest entry
asserts the ISSUE acceptance bar: zero mismatches and coalesced
throughput at least on par with sequential dispatch.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path

from repro.engine import SpGEMMEngine
from repro.serve import ServeConfig, SpGEMMServer, replay_sequential, replay_through_server, results_identical
from repro.workloads import TraceSpec, synthesize_trace

from _common import gate_metric, save_bench_json

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The canonical serving trace: Zipf popularity over the default
#: population — repeats of hot matrices are exactly what coalesces.
SPEC = TraceSpec(requests=120, seed=0)

#: Both servers share these; only ``max_batch`` differs between modes.
SERVE_KW = dict(window_s=0.0, max_pending=4096, autostart=False)
COALESCED_MAX_BATCH = 32


def _run_mode(trace, *, max_batch: int, repeats: int = 3) -> dict:
    """Replay ``trace`` through a paused server ``repeats`` times; report
    the best run's throughput (least scheduler noise) plus the serving
    stats of the last run."""
    best_seconds = float("inf")
    results = None
    stats = None
    for _ in range(repeats):
        server = SpGEMMServer(
            SpGEMMEngine(), ServeConfig(max_batch=max_batch, **SERVE_KW)
        )
        try:
            t0 = time.perf_counter()
            out = replay_through_server(server, trace)
            seconds = time.perf_counter() - t0
        finally:
            server.close()
        best_seconds = min(best_seconds, seconds)
        results = out
        stats = server.serving_stats()
    lat = stats["latency_s"]
    return {
        "products": len(results),
        "batches": stats["batches"],
        "coalesce_ratio": stats["coalesce_ratio"],
        "seconds": round(best_seconds, 4),
        "throughput_rps": round(len(results) / best_seconds, 2),
        "latency_s": {k: lat[k] for k in ("p50", "p95", "p99")},
        "_results": results,
    }


def run_bench() -> dict:
    trace = synthesize_trace(SPEC)
    expected = replay_sequential(SpGEMMEngine(), trace)

    coalesced = _run_mode(trace, max_batch=COALESCED_MAX_BATCH)
    sequential = _run_mode(trace, max_batch=1)

    mismatches = 0
    for mode in (coalesced, sequential):
        if not results_identical(mode.pop("_results"), expected):
            mismatches += 1

    return {
        "spec": asdict(SPEC),
        "coalesced": coalesced,
        "sequential": sequential,
        "summary": {
            "products": len(expected),
            "throughput_ratio_coalesced_vs_sequential": round(
                coalesced["throughput_rps"] / sequential["throughput_rps"], 3
            ),
            "coalesce_ratio": round(coalesced["coalesce_ratio"], 3),
            "result_mismatches": mismatches,
        },
    }


def _gates(results: dict) -> list[dict]:
    s = results["summary"]
    return [
        gate_metric(
            "summary.throughput_ratio_coalesced_vs_sequential",
            s["throughput_ratio_coalesced_vs_sequential"],
            "higher",
        ),
        gate_metric("summary.coalesce_ratio", s["coalesce_ratio"], "higher"),
        gate_metric("summary.result_mismatches", s["result_mismatches"], "lower"),
    ]


def save_bench() -> dict:
    results = run_bench()
    save_bench_json(
        OUT_PATH,
        "serve",
        results,
        gate=_gates(results),
        config={"spec": asdict(SPEC), "serve": dict(SERVE_KW), "max_batch": COALESCED_MAX_BATCH},
    )
    return results


def test_serve_bench_meets_acceptance_bar():
    """ISSUE 8 acceptance: coalesced serving is bitwise-faithful and at
    least keeps pace with sequential dispatch on a Zipf replay trace."""
    results = save_bench()
    s = results["summary"]
    assert s["result_mismatches"] == 0, "coalesced serving must stay bitwise-identical"
    assert s["coalesce_ratio"] > 1.0, "a Zipf trace must actually coalesce"
    # Wall-clock ratio: assert a noise-tolerant floor here; the committed
    # artefact (generated on a quiet machine) carries the real number.
    assert s["throughput_ratio_coalesced_vs_sequential"] >= 0.8
    for mode in ("coalesced", "sequential"):
        assert set(results[mode]["latency_s"]) == {"p50", "p95", "p99"}
    assert OUT_PATH.exists()


if __name__ == "__main__":
    res = save_bench()
    print(json.dumps({k: v for k, v in res.items() if k != "spec"}, indent=2, sort_keys=True))
    print(f"wrote {OUT_PATH}")
