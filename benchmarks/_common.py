"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure from the shared (disk-
cached) suite sweep and saves the rendered text under
``benchmarks/results/``.  Suite size is controlled by ``REPRO_SUITE``:

* ``quick``    — first 16 standard matrices (smoke runs),
* ``standard`` — the 39-matrix cross-family subset (default),
* ``full``     — all 110 matrices (the paper-scale sweep; minutes).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import ExperimentConfig, sweep_suite
from repro.matrices import suite_names

RESULTS_DIR = Path(__file__).parent / "results"

#: The Table-1 presentation order used by every figure.
REORDER_ORDER = ["shuffled", "rabbit", "amd", "rcm", "nd", "gp", "hp", "gray", "degree", "slashburn"]


def bench_config() -> ExperimentConfig:
    return ExperimentConfig()


def bench_suite() -> list[str]:
    mode = os.environ.get("REPRO_SUITE", "standard")
    if mode == "quick":
        return suite_names("standard")[:16]
    if mode in ("standard", "full"):
        return suite_names(mode)
    raise ValueError(f"REPRO_SUITE must be quick/standard/full, got {mode!r}")


def shared_sweeps():
    """The one suite sweep all figure/table benches share (disk-cached)."""
    return sweep_suite(bench_suite(), bench_config())


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


def speedups_by_algo(sweeps, variant: str, algos=None) -> dict[str, list[float]]:
    """Aligned per-matrix speedup lists for one SpGEMM variant."""
    algos = algos or REORDER_ORDER
    return {a: [s.speedup(variant, a) for s in sweeps] for a in algos}
