"""Shared helpers for the benchmark harness.

Every bench regenerates one paper table/figure from the shared (disk-
cached) suite sweep and saves the rendered text under
``benchmarks/results/``.  Suite size is controlled by ``REPRO_SUITE``:

* ``quick``    — first 16 standard matrices (smoke runs),
* ``standard`` — the 39-matrix cross-family subset (default),
* ``full``     — all 110 matrices (the paper-scale sweep; minutes).
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path

from repro.experiments import ExperimentConfig, sweep_suite
from repro.matrices import suite_names

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the ``BENCH_*.json`` envelope.  Bump when the envelope
#: layout (not the per-bench ``results`` payload) changes;
#: ``scripts/check_bench_regression.py`` refuses envelopes it does not
#: understand.
SCHEMA_VERSION = 1


def git_rev() -> str:
    """Short commit hash of the working tree (``"unknown"`` outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            return proc.stdout.strip()
    except Exception:
        pass
    return "unknown"


def gate_metric(metric: str, value: float, direction: str) -> dict:
    """One perf-gate entry of a bench envelope.

    ``direction`` says which way is better (``"higher"`` for speedups
    and hit rates, ``"lower"`` for latencies and errors), so the
    regression gate can orient its ratio without knowing the metric.
    """
    if direction not in ("higher", "lower"):
        raise ValueError(f"direction must be 'higher' or 'lower', got {direction!r}")
    return {"metric": metric, "value": float(value), "direction": direction}


def bench_envelope(name: str, results: dict, *, gate=(), config=None) -> dict:
    """Wrap one bench's results in the schema-versioned envelope every
    committed ``BENCH_*.json`` carries: schema version, bench name, git
    revision, generation config, and the gated metrics the regression
    gate compares across revisions."""
    return {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "git_rev": git_rev(),
        "config": dict(config or {}),
        "gate": [dict(g) for g in gate],
        "results": results,
    }


def save_bench_json(path, name: str, results: dict, *, gate=(), config=None) -> dict:
    """Write the envelope for ``results`` to ``path`` (sorted keys, so
    reruns of deterministic benches produce byte-identical files)."""
    env = bench_envelope(name, results, gate=gate, config=config)
    Path(path).write_text(json.dumps(env, indent=2, sort_keys=True) + "\n")
    return env

#: The Table-1 presentation order used by every figure.
REORDER_ORDER = ["shuffled", "rabbit", "amd", "rcm", "nd", "gp", "hp", "gray", "degree", "slashburn"]


def bench_config() -> ExperimentConfig:
    return ExperimentConfig()


def bench_suite() -> list[str]:
    mode = os.environ.get("REPRO_SUITE", "standard")
    if mode == "quick":
        return suite_names("standard")[:16]
    if mode in ("standard", "full"):
        return suite_names(mode)
    raise ValueError(f"REPRO_SUITE must be quick/standard/full, got {mode!r}")


def shared_sweeps():
    """The one suite sweep all figure/table benches share (disk-cached)."""
    return sweep_suite(bench_suite(), bench_config())


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


def speedups_by_algo(sweeps, variant: str, algos=None) -> dict[str, list[float]]:
    """Aligned per-matrix speedup lists for one SpGEMM variant."""
    algos = algos or REORDER_ORDER
    return {a: [s.speedup(variant, a) for s in sweeps] for a in algos}
