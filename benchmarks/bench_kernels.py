"""Kernel bench — the hybrid row-binned kernel vs the single-strategy
kernels on a skewed-row suite (DESIGN.md §15).

The hybrid kernel's bet is that real operands mix row shapes: a
power-law matrix has thousands of near-empty rows (batched-merge
territory) and a few hub rows worth a dense scatter panel, and no
single accumulator strategy is right for both.  This bench times each
kernel's *execution* (preparation is the amortised one-off the engine
ledgers separately) on generator-suite matrices with skewed row-work
distributions, checks every product bitwise against the row-wise
reference, and gates two numbers:

* ``summary.hybrid_vs_best_single_geomean`` — geomean over the suite of
  hybrid's speedup against the **best** single kernel per matrix
  (row-wise or cluster-wise, whichever won there); the ISSUE 10
  acceptance bar is >= 1.15.
* ``summary.bitwise_mismatches`` — count of kernel executions whose
  output was not bit-identical to ``spgemm_rowwise``; must be 0.

Emits ``BENCH_kernels.json`` at the repository root, wrapped in the
schema-versioned envelope of ``benchmarks/_common.py``.  All kernel
executions dispatch through pipeline specs (RA001: benches never call
kernel functions directly).

Run directly (``python benchmarks/bench_kernels.py``) or via pytest.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.backends import time_execution
from repro.matrices import generators as G
from repro.pipeline import PipelineSpec

from _common import gate_metric, save_bench_json

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: Skewed-row generator suite: power-law degree distributions (web,
#: R-MAT, citation) plus one hub-and-spoke road network.  Sizes keep
#: the pure-python reference paths affordable while leaving the heavy
#: tail heavy enough that bin dispatch matters.
MATRICES = {
    "web1500": lambda: G.web_graph(1500, seed=0),
    "web2500": lambda: G.web_graph(2500, seed=1),
    "rmat10": lambda: G.rmat(10, edge_factor=8, seed=0),
    "citation2000": lambda: G.citation_graph(2000, avg_out=8, seed=0),
    "road2000": lambda: G.road_network(2000, shortcut_ratio=0.1, seed=0),
}

#: (kernel label, pipeline spec).  The cluster pipeline pays its
#: clustering at build time — outside the timed region — mirroring how
#: the engine amortises preparation.
KERNELS = [
    ("rowwise", "original+none+rowwise"),
    ("cluster", "original+fixed:8+cluster"),
    ("hybrid", "original+none+hybrid"),
]

REPS = 3


def run_bench() -> dict:
    results: dict = {"matrices": {}, "summary": {}}
    ratios: list[float] = []
    mismatches = 0
    for mat_name, build_matrix in MATRICES.items():
        A = build_matrix()
        ref = PipelineSpec.parse("original+none+rowwise").run(A, A)
        cell: dict = {}
        for kernel_label, spec_text in KERNELS:
            spec = PipelineSpec.parse(spec_text)
            built = spec.build(A)
            C = built.execute(A)
            bitwise = (
                bool(np.array_equal(C.indptr, ref.indptr))
                and bool(np.array_equal(C.indices, ref.indices))
                and bool(np.array_equal(C.values, ref.values))
            )
            if not bitwise:
                mismatches += 1
            seconds = time_execution(built, A, "reference", reps=REPS)
            cell[kernel_label] = {"seconds": round(seconds, 6), "bitwise": bitwise}
        best_single = min(cell["rowwise"]["seconds"], cell["cluster"]["seconds"])
        ratio = best_single / cell["hybrid"]["seconds"]
        cell["hybrid"]["speedup_vs_best_single"] = round(ratio, 3)
        ratios.append(ratio)
        results["matrices"][mat_name] = cell
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    results["summary"]["hybrid_vs_best_single_geomean"] = round(geomean, 3)
    results["summary"]["bitwise_mismatches"] = mismatches
    return results


def save_bench() -> dict:
    results = run_bench()
    gates = [
        gate_metric(
            "summary.hybrid_vs_best_single_geomean",
            results["summary"]["hybrid_vs_best_single_geomean"],
            "higher",
        ),
        gate_metric("summary.bitwise_mismatches", results["summary"]["bitwise_mismatches"], "lower"),
    ]
    save_bench_json(
        OUT_PATH,
        "kernels",
        results,
        gate=gates,
        config={"matrices": sorted(MATRICES), "kernels": [k for k, _ in KERNELS], "reps": REPS},
    )
    return results


def test_kernel_bench_meets_acceptance_bar():
    """ISSUE 10 acceptance: hybrid >= 1.15x geomean over the best single
    kernel on the skewed suite, with zero bitwise mismatches (and the
    JSON artefact is emitted)."""
    results = save_bench()
    assert results["summary"]["bitwise_mismatches"] == 0
    gm = results["summary"]["hybrid_vs_best_single_geomean"]
    assert gm >= 1.15, f"hybrid geomean {gm:.3f}x vs best single kernel (< 1.15x bar)"
    assert OUT_PATH.exists()


if __name__ == "__main__":
    res = save_bench()
    print(f"wrote {OUT_PATH.name}")
    for mat, cell in res["matrices"].items():
        line = "  ".join(f"{k}={v['seconds']:.4f}s" for k, v in cell.items())
        print(f"  {mat:>14}: {line}  (hybrid {cell['hybrid']['speedup_vs_best_single']}x)")
    print(f"  geomean hybrid vs best single: {res['summary']['hybrid_vs_best_single_geomean']}x")
    print(f"  bitwise mismatches: {res['summary']['bitwise_mismatches']}")
